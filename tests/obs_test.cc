// The observability layer (src/obs/): histogram bucketing and snapshot
// algebra, registry rendering on both export surfaces (Prometheus text
// exposition and the flat STATS JSON), the windowed Reporter, and the
// commit-trace ring with its slow-commit capture.
//
// The contract under test: the SAME registry objects back every export
// path, Prometheus output parses (HELP/TYPE blocks, cumulative buckets,
// _count == sum of bucket increments), JSON counters render as integers
// (net_test matches them textually), and snapshot Delta/merge arithmetic
// is exact so windowed percentiles cannot drift from the raw counts.

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace cpdb::obs {
namespace {

// ----- Histogram -------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesArePowersOfTwoMicros) {
  EXPECT_EQ(Histogram::BucketOf(0.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(0.9), 0u);    // [0, 1us)
  EXPECT_EQ(Histogram::BucketOf(1.0), 1u);    // [1, 2us)
  EXPECT_EQ(Histogram::BucketOf(1.9), 1u);
  EXPECT_EQ(Histogram::BucketOf(2.0), 2u);    // [2, 4us)
  EXPECT_EQ(Histogram::BucketOf(3.5), 2u);
  EXPECT_EQ(Histogram::BucketOf(4.0), 3u);
  EXPECT_EQ(Histogram::BucketOf(1000.0), 10u);  // [512, 1024us)
  // Everything past the covered range lands in the +Inf bucket.
  EXPECT_EQ(Histogram::BucketOf(1e12), Histogram::kBuckets - 1);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperUs(Histogram::kBuckets - 1)));
  EXPECT_EQ(Histogram::BucketUpperUs(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperUs(10), 1024.0);
}

TEST(HistogramTest, SnapshotCountsAndMean) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.MeanMicros(), 20.0, 0.01);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucketResolution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  Histogram::Snapshot s = h.Snap();
  // Log2 buckets give ~2x resolution: the estimate must land within the
  // bucket that holds the true percentile.
  double p50 = s.Percentile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  double p99 = s.Percentile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_EQ(Histogram::Snapshot{}.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SnapshotMergeAndDeltaAreExact) {
  Histogram h;
  h.Record(5);
  h.Record(50);
  Histogram::Snapshot first = h.Snap();
  h.Record(500);
  Histogram::Snapshot second = h.Snap();

  Histogram::Snapshot window = second.Delta(first);
  EXPECT_EQ(window.count, 1u);
  EXPECT_EQ(window.buckets[Histogram::BucketOf(500)], 1u);

  Histogram::Snapshot merged = first;
  merged += window;
  EXPECT_EQ(merged.count, second.count);
  EXPECT_EQ(merged.sum_ns, second.sum_ns);
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(merged.buckets[i], second.buckets[i]) << "bucket " << i;
  }
}

// ----- Registry rendering ----------------------------------------------------

TEST(RegistryTest, SameNameAndLabelsReturnsSameObject) {
  Registry reg;
  Counter* a = reg.GetCounter("cpdb_x_total", "help", "", "x");
  Counter* b = reg.GetCounter("cpdb_x_total", "other help");
  EXPECT_EQ(a, b);
  // Distinct labels are distinct series.
  Histogram* h1 = reg.GetHistogram("cpdb_stage_us", "h", "stage=\"a\"");
  Histogram* h2 = reg.GetHistogram("cpdb_stage_us", "h", "stage=\"b\"");
  EXPECT_NE(h1, h2);
}

TEST(RegistryTest, PrometheusExpositionParses) {
  Registry reg;
  reg.GetCounter("cpdb_commits_total", "Transactions committed", "", "")
      ->Inc(7);
  reg.GetGauge("cpdb_depth", "Queue depth")->Set(-3);
  Histogram* h = reg.GetHistogram("cpdb_lat_us", "Latency", "op=\"get\"");
  h->Record(3.0);   // bucket [2,4us)
  h->Record(100.0);
  reg.SetCallback("cpdb_cb_total", "Callback counter", true,
                  [] { return 42.0; });

  std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("# HELP cpdb_commits_total Transactions committed\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE cpdb_commits_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("cpdb_commits_total 7\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cpdb_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("cpdb_depth -3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE cpdb_lat_us histogram\n"), std::string::npos);
  // Cumulative buckets: the le="4" bucket already contains the 3us
  // sample, the +Inf bucket contains everything.
  EXPECT_NE(out.find("cpdb_lat_us_bucket{op=\"get\",le=\"4\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("cpdb_lat_us_bucket{op=\"get\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("cpdb_lat_us_count{op=\"get\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("cpdb_cb_total 42\n"), std::string::npos);

  // Minimal line discipline: every non-comment line is `name[{labels}]
  // value`, every series name appears after a HELP and a TYPE.
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated last line";
    std::string line = out.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) FAIL() << "blank line in exposition";
    if (line[0] == '#') continue;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(sp, 0u) << line;
  }
}

TEST(RegistryTest, JsonRendersIntegersWithoutDecimalPoint) {
  Registry reg;
  reg.GetCounter("cpdb_commits_total", "h", "", "commits")->Inc(3);
  reg.GetGauge("cpdb_tid", "h", "", "last_tid")->Set(17);
  reg.SetCallback("cpdb_frac", "h", false, [] { return 0.5; }, "", "frac");
  reg.GetCounter("cpdb_hidden_total", "no json key")->Inc();
  Histogram* h = reg.GetHistogram("cpdb_lat_us", "h", "", "lat_us");
  h->Record(10);

  std::string out = reg.RenderJson();
  EXPECT_NE(out.find("\"commits\":3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"last_tid\":17"), std::string::npos);
  EXPECT_NE(out.find("\"frac\":0.5"), std::string::npos);
  EXPECT_EQ(out.find("cpdb_hidden"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  // Histograms flatten to derived scalar fields.
  EXPECT_NE(out.find("\"lat_us_count\":1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"lat_us_p99_us\":"), std::string::npos);
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
}

TEST(RegistryTest, DeltaJsonDifferencesCountersButNotGauges) {
  Registry reg;
  Counter* c = reg.GetCounter("cpdb_reqs_total", "h", "", "requests");
  Gauge* g = reg.GetGauge("cpdb_depth", "h", "", "depth");
  Histogram* h = reg.GetHistogram("cpdb_lat_us", "h", "", "lat_us");
  c->Inc(10);
  g->Set(5);
  h->Record(100);
  Sample prev = reg.TakeSample();
  c->Inc(4);
  g->Set(2);
  h->Record(200);
  h->Record(300);
  Sample cur = reg.TakeSample();

  std::string out = Registry::DeltaJson(prev, cur);
  EXPECT_NE(out.find("\"requests\":4"), std::string::npos) << out;  // 14-10
  EXPECT_NE(out.find("\"depth\":2"), std::string::npos);            // as-is
  EXPECT_NE(out.find("\"lat_us_count\":2"), std::string::npos);     // window
}

// ----- Reporter --------------------------------------------------------------

TEST(ReporterTest, FoldsWindowsAndFinalPartialWindow) {
  Registry reg;
  Counter* c = reg.GetCounter("cpdb_ticks_total", "h", "", "ticks");
  Reporter rep(&reg, 10);
  rep.Start();
  c->Inc(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  c->Inc(2);
  rep.Stop();

  std::vector<std::string> rows = rep.Rows();
  ASSERT_FALSE(rows.empty());
  uint64_t total = 0;
  for (const std::string& row : rows) {
    EXPECT_NE(row.find("\"interval_seq\":"), std::string::npos) << row;
    EXPECT_NE(row.find("\"interval_ms\":"), std::string::npos);
    size_t at = row.find("\"ticks\":");
    ASSERT_NE(at, std::string::npos) << row;
    total += std::strtoull(row.c_str() + at + std::strlen("\"ticks\":"),
                           nullptr, 10);
  }
  // Windowed deltas partition the counter: no tick lost, none double
  // counted, including across the final partial window.
  EXPECT_EQ(total, 5u);
  // Stop() is idempotent and Start/Stop cycles do not crash.
  rep.Stop();
}

// ----- Trace ring ------------------------------------------------------------

CommitSpan MakeSpan(int64_t tid, double total_us) {
  CommitSpan s;
  s.tid = tid;
  s.cohort = 1;
  s.cohort_size = 2;
  s.queue_us = 1;
  s.apply_us = 2;
  s.seal_us = 3;
  s.wake_us = 4;
  s.total_us = total_us;
  s.claims = {"T/data/k" + std::to_string(tid)};
  return s;
}

TEST(TraceBufferTest, RingKeepsMostRecentSpans) {
  TraceBuffer buf(4, 4);
  for (int64_t i = 1; i <= 10; ++i) buf.Record(MakeSpan(i, 100));
  EXPECT_EQ(buf.recorded(), 10u);
  std::vector<CommitSpan> recent = buf.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].tid, 10);  // most recent first
  EXPECT_EQ(recent[3].tid, 7);
  EXPECT_EQ(buf.slow_recorded(), 0u);  // threshold disabled by default
}

TEST(TraceBufferTest, SlowThresholdCapturesAndRenders) {
  TraceBuffer buf(8, 8);
  buf.SetSlowThresholdUs(1000);
  buf.Record(MakeSpan(1, 10));     // fast: not captured
  buf.Record(MakeSpan(2, 5000));   // slow: captured (also logs to stderr)
  EXPECT_EQ(buf.slow_recorded(), 1u);
  std::vector<CommitSpan> slow = buf.Slow();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].tid, 2);

  std::string json = buf.SlowLogJson();
  EXPECT_NE(json.find("\"slow_threshold_us\":1000"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"slow_recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("T/data/k2"), std::string::npos);
  // Disabling stops capture without clearing history.
  buf.SetSlowThresholdUs(0);
  buf.Record(MakeSpan(3, 9000));
  EXPECT_EQ(buf.slow_recorded(), 1u);
}

// ----- SpanCollector / SpanStore (request tracing) ---------------------------

TEST(SpanCollectorTest, InactiveCollectorIsANoOp) {
  SpanCollector none;  // default: trace_id 0
  EXPECT_FALSE(none.active());
  EXPECT_EQ(none.Open("server.PING", 0), 0u);
  none.Close(0);  // must not crash
  EXPECT_EQ(none.AppendTimed("commit.queue", 0, 1, 2), 0u);
  EXPECT_EQ(none.root_span_id(), 0u);
  EXPECT_TRUE(none.Take().empty());
}

TEST(SpanCollectorTest, NestsSpansAndSeedsIdsPastTheWireParent) {
  TraceContext ctx{/*trace_id=*/40, /*parent_span_id=*/10, /*sampled=*/true};
  SpanCollector col(ctx);
  ASSERT_TRUE(col.active());

  const uint64_t root = col.Open("server.GETMOD", ctx.parent_span_id);
  // Local ids start past the caller's parent id: the wire parent can
  // never collide with (and mis-nest under) a server-minted id.
  EXPECT_EQ(root, 11u);
  EXPECT_EQ(col.root_span_id(), root);
  const uint64_t child = col.Open("query.execute", root, "T/data");
  EXPECT_EQ(child, 12u);
  col.CloseWithCost(child, /*rows=*/3, /*round_trips=*/2, /*cost_us=*/7.5);
  col.Close(root);

  std::vector<Span> spans = col.Take();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, "server.GETMOD");
  EXPECT_EQ(spans[0].parent_span_id, 10u);
  EXPECT_EQ(spans[0].trace_id, 40u);
  EXPECT_GE(spans[0].dur_us, 0.0);
  EXPECT_EQ(spans[1].parent_span_id, root);
  EXPECT_EQ(spans[1].detail, "T/data");
  EXPECT_EQ(spans[1].rows, 3u);
  EXPECT_EQ(spans[1].round_trips, 2u);
  EXPECT_EQ(spans[1].cost_us, 7.5);
  // Children open after (and close within) their parent.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].dur_us, spans[0].dur_us);
}

TEST(SpanCollectorTest, CapsSpansPerRequestAndCountsDrops) {
  SpanCollector col(TraceContext{1, 0, true});
  const uint64_t root = col.Open("server.TRACEBACK", 0);
  for (size_t i = 1; i < SpanCollector::kMaxSpans; ++i) {
    EXPECT_NE(col.Open("query.loc_scan", root), 0u) << i;
  }
  // Full: a runaway provenance walk cannot turn one trace into an
  // allocation storm. Overflow is counted, not stored.
  EXPECT_EQ(col.Open("query.loc_scan", root), 0u);
  EXPECT_EQ(col.AppendTimed("commit.queue", root, 0, 1), 0u);
  EXPECT_EQ(col.dropped(), 2u);
  EXPECT_EQ(col.spans().size(), SpanCollector::kMaxSpans);
}

/// A ready-made three-span trace: root <- query, plus one orphan whose
/// parent id is not in the set (as if its parent got overflow-dropped).
std::vector<Span> MakeTrace(uint64_t trace_id, double root_dur) {
  SpanCollector col(TraceContext{trace_id, 0, true});
  uint64_t root = col.Open("server.GETMOD", 0);
  uint64_t q = col.Open("query.execute", root, "T/data/k1");
  col.CloseWithCost(q, 2, 1, 5.0);
  col.Close(root);
  std::vector<Span> spans = col.Take();
  spans[0].dur_us = root_dur;
  Span orphan;
  orphan.trace_id = trace_id;
  orphan.span_id = 999;
  orphan.parent_span_id = 777;  // unknown parent
  orphan.kind = "query.loc_scan";
  spans.push_back(orphan);
  return spans;
}

TEST(SpanStoreTest, TreeJsonNestsChildrenAndAdoptsOrphans) {
  std::string json = SpanStore::TreeJson(MakeTrace(42, 100));
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"spans\":3"), std::string::npos);
  // The query span nests INSIDE the root's children array...
  size_t root_at = json.find("\"kind\":\"server.GETMOD\"");
  size_t child_at = json.find("\"kind\":\"query.execute\"");
  ASSERT_NE(root_at, std::string::npos);
  ASSERT_NE(child_at, std::string::npos);
  EXPECT_LT(root_at, child_at);
  EXPECT_NE(json.find("\"detail\":\"T/data/k1\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":2"), std::string::npos);
  // ...and the orphan is adopted by the root instead of vanishing.
  EXPECT_NE(json.find("\"kind\":\"query.loc_scan\""), std::string::npos);
  EXPECT_EQ(SpanStore::TreeJson({}), "{}");
}

TEST(SpanStoreTest, RecordsSampledTracesPerRootKind) {
  SpanStore store(/*capacity=*/2, /*slow_capacity=*/2);
  // Unsampled + fast records nothing at all.
  store.Record(MakeTrace(1, 10), /*sampled=*/false);
  EXPECT_EQ(store.recorded(), 0u);
  EXPECT_EQ(store.slow_recorded(), 0u);

  for (uint64_t id = 2; id <= 5; ++id) {
    store.Record(MakeTrace(id, 10), /*sampled=*/true);
  }
  EXPECT_EQ(store.recorded(), 4u);
  std::string json = store.TracesJson();
  // The ring holds 2 per root kind; the two newest survive.
  EXPECT_EQ(json.find("\"trace_id\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":4"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":5"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":4"), std::string::npos);
  EXPECT_NE(json.find("\"slow\":[]"), std::string::npos);
}

TEST(SpanStoreTest, SlowThresholdCapturesEvenUnsampledTraces) {
  SpanStore store(4, 4);
  store.SetSlowThresholdUs(1000);
  EXPECT_EQ(store.SlowThresholdUs(), 1000);
  store.Record(MakeTrace(1, 10), /*sampled=*/false);    // fast: dropped
  store.Record(MakeTrace(2, 5000), /*sampled=*/false);  // slow: captured
  EXPECT_EQ(store.recorded(), 0u);  // slow-only capture is not "sampled"
  EXPECT_EQ(store.slow_recorded(), 1u);
  std::string json = store.TracesJson();
  EXPECT_NE(json.find("\"slow_threshold_us\":1000"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"slow_recorded\":1"), std::string::npos);
  size_t slow_at = json.find("\"slow\":[");
  ASSERT_NE(slow_at, std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":2", slow_at), std::string::npos);

  // A sampled AND slow trace lands in both surfaces.
  store.Record(MakeTrace(3, 9000), /*sampled=*/true);
  EXPECT_EQ(store.recorded(), 1u);
  EXPECT_EQ(store.slow_recorded(), 2u);
}

}  // namespace
}  // namespace cpdb::obs
