// The Section 6 extensions: bulk updates compiled to atomic copies, and
// approximate (glob) provenance with may/may-not semantics.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cpdb {
namespace {

using provenance::ProvOp;
using query::ApproxProvStore;
using query::ApproxRecord;
using query::MayAnswer;
using tree::Path;
using tree::PathGlob;

TEST(BulkTest, ExpandBulkCopyGeneratesOneOpPerMatch) {
  auto universe = tree::ParseTree(
      "{S1: {o1: {loc: a}, o2: {loc: b}, o3: {loc: c}}, T: {}}");
  ASSERT_TRUE(universe.ok());
  update::BulkCopySpec spec;
  spec.src = PathGlob::MustParse("S1/*");
  spec.dst = PathGlob::MustParse("T/*");
  auto script = update::ExpandBulkCopy(universe.value(), spec);
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->size(), 3u);
  EXPECT_EQ((*script)[0].ToString(), "copy S1/o1 into T/o1");
  EXPECT_EQ((*script)[2].ToString(), "copy S1/o3 into T/o3");
}

TEST(BulkTest, ArityMismatchAndDeepDstRejected) {
  tree::Tree universe;
  update::BulkCopySpec bad1;
  bad1.src = PathGlob::MustParse("S1/*/x");
  bad1.dst = PathGlob::MustParse("T/a");
  EXPECT_FALSE(update::ExpandBulkCopy(universe, bad1).ok());
  update::BulkCopySpec bad2;
  bad2.src = PathGlob::MustParse("S1/**");
  bad2.dst = PathGlob::MustParse("T/**");
  EXPECT_FALSE(update::ExpandBulkCopy(universe, bad2).ok());
}

TEST(BulkTest, EditorBulkCopyTracksFullAndApproxProvenance) {
  auto s = testutil::MakeFigureSession(
      provenance::Strategy::kTransactional);
  ASSERT_NE(s, nullptr);
  // Rebuild the editor with approximate tracking on.
  relstore::Database prov_db("provdb2");
  provenance::ProvBackend backend(&prov_db);
  EditorOptions opts;
  opts.strategy = provenance::Strategy::kTransactional;
  opts.enable_approx = true;
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  wrap::TreeSourceDb s1("S1", testutil::Figure4SourceS1());
  auto editor = Editor::Create(&target, &backend, opts);
  ASSERT_TRUE(editor.ok());
  Editor& ed = **editor;
  ASSERT_TRUE(ed.MountSource(&s1).ok());

  update::BulkCopySpec spec;
  spec.src = PathGlob::MustParse("S1/*");
  spec.dst = PathGlob::MustParse("T/*");
  // The "*" binds jointly: each S1 entry lands under its own name in T.
  auto n = ed.BulkCopy(spec);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 3u);  // a1, a2, a3
  ASSERT_TRUE(ed.Commit().ok());
  EXPECT_TRUE(ed.universe().Contains(Path::MustParse("T/a1/x")));

  // Full provenance: one record per copied node (transactional-naive).
  EXPECT_GT(ed.store()->RecordCount(), 3u);
  // Approximate provenance: exactly one glob record for the statement.
  ASSERT_NE(ed.approx(), nullptr);
  EXPECT_EQ(ed.approx()->RecordCount(), 1u);
  EXPECT_LT(ed.approx()->ApproxBytes(), 64u);
}

TEST(ApproxTest, MayAffect) {
  ApproxProvStore store;
  ApproxRecord rec;
  rec.tid = 5;
  rec.op = ProvOp::kCopy;
  rec.loc = PathGlob::MustParse("T/a/*/b");
  rec.src = PathGlob::MustParse("S/a/*/b");
  store.Track(rec);

  EXPECT_EQ(store.MayAffect(Path::MustParse("T/a/x/b")).size(), 1u);
  EXPECT_TRUE(store.MayAffect(Path::MustParse("T/a/x/c")).empty());
}

TEST(ApproxTest, MayComeFromThreeValued) {
  ApproxProvStore store;
  ApproxRecord wild;
  wild.tid = 5;
  wild.op = ProvOp::kCopy;
  wild.loc = PathGlob::MustParse("T/a/*/b");
  wild.src = PathGlob::MustParse("S/a/*/b");
  store.Track(wild);
  ApproxRecord exact;
  exact.tid = 6;
  exact.op = ProvOp::kCopy;
  exact.loc = PathGlob::MustParse("T/q");
  exact.src = PathGlob::MustParse("S/q0");
  store.Track(exact);

  // Wildcard record: only "maybe".
  EXPECT_EQ(store.MayComeFrom(5, Path::MustParse("T/a/x/b"),
                              Path::MustParse("S/a/x/b")),
            MayAnswer::kMaybe);
  // Joint binding: T/a/x/b cannot come from S/a/y/b.
  EXPECT_EQ(store.MayComeFrom(5, Path::MustParse("T/a/x/b"),
                              Path::MustParse("S/a/y/b")),
            MayAnswer::kNo);
  // Wrong tid.
  EXPECT_EQ(store.MayComeFrom(4, Path::MustParse("T/a/x/b"),
                              Path::MustParse("S/a/x/b")),
            MayAnswer::kNo);
  // Exact record: definite yes.
  EXPECT_EQ(store.MayComeFrom(6, Path::MustParse("T/q"),
                              Path::MustParse("S/q0")),
            MayAnswer::kYes);
}

TEST(ApproxTest, MayComeFromAnywhere) {
  ApproxProvStore store;
  ApproxRecord rec;
  rec.tid = 5;
  rec.op = ProvOp::kCopy;
  rec.loc = PathGlob::MustParse("T/*/organelle");
  rec.src = PathGlob::MustParse("S1/organelle/*/organelle");
  store.Track(rec);
  EXPECT_EQ(store.MayComeFromAnywhere(
                Path::MustParse("T/o3/organelle"),
                PathGlob::MustParse("S1/organelle/*/organelle")),
            MayAnswer::kMaybe);
  EXPECT_EQ(store.MayComeFromAnywhere(
                Path::MustParse("T/o3/species"),
                PathGlob::MustParse("S1/organelle/*/organelle")),
            MayAnswer::kNo);
}

TEST(ApproxTest, StorageIsProportionalToStatementCount) {
  // "The storage needed for approximate provenance remains proportional
  // to the size of the query or update" — 3 statements = 3 records, no
  // matter how much data each touched.
  ApproxProvStore store;
  for (int i = 0; i < 3; ++i) {
    ApproxRecord rec;
    rec.tid = i;
    rec.op = ProvOp::kCopy;
    rec.loc = PathGlob::MustParse("T/batch" + std::to_string(i) + "/**");
    rec.src = PathGlob::MustParse("S/**");
    store.Track(rec);
  }
  EXPECT_EQ(store.RecordCount(), 3u);
}

}  // namespace
}  // namespace cpdb
