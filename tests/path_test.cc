#include "tree/path.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace cpdb::tree {
namespace {

TEST(PathTest, RootIsEmpty) {
  Path root;
  EXPECT_TRUE(root.IsRoot());
  EXPECT_EQ(root.Depth(), 0u);
  EXPECT_EQ(root.ToString(), "");
}

TEST(PathTest, ParseSimple) {
  auto r = Path::Parse("T/c1/y");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Depth(), 3u);
  EXPECT_EQ(r->At(0), "T");
  EXPECT_EQ(r->At(1), "c1");
  EXPECT_EQ(r->At(2), "y");
  EXPECT_EQ(r->ToString(), "T/c1/y");
}

TEST(PathTest, ParseEmptyIsRoot) {
  auto r = Path::Parse("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsRoot());
}

TEST(PathTest, ParseRejectsEmptyLabels) {
  EXPECT_FALSE(Path::Parse("a//b").ok());
  EXPECT_FALSE(Path::Parse("/a").ok());
  EXPECT_FALSE(Path::Parse("a/").ok());
}

TEST(PathTest, KeyedXmlStyleLabels) {
  // Paths like SwissProt/Release{20}/Q01780 from the paper must parse.
  auto r = Path::Parse("SwissProt/Release{20}/Q01780/Citation{3}/Title");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Depth(), 5u);
  EXPECT_EQ(r->At(1), "Release{20}");
}

TEST(PathTest, ParentAndLeaf) {
  Path p = Path::MustParse("T/c1/y");
  EXPECT_EQ(p.Leaf(), "y");
  EXPECT_EQ(p.Parent().ToString(), "T/c1");
  EXPECT_EQ(p.Parent().Parent().ToString(), "T");
  EXPECT_TRUE(p.Parent().Parent().Parent().IsRoot());
}

TEST(PathTest, ChildAndConcat) {
  Path p = Path::MustParse("T");
  EXPECT_EQ(p.Child("c1").ToString(), "T/c1");
  EXPECT_EQ(p.Concat(Path::MustParse("c1/y")).ToString(), "T/c1/y");
  EXPECT_EQ(Path().Concat(p).ToString(), "T");
}

TEST(PathTest, PrefixRelation) {
  Path t = Path::MustParse("T");
  Path tc1 = Path::MustParse("T/c1");
  Path tc1y = Path::MustParse("T/c1/y");
  Path tc2 = Path::MustParse("T/c2");

  EXPECT_TRUE(t.IsPrefixOf(tc1));
  EXPECT_TRUE(t.IsPrefixOf(tc1y));
  EXPECT_TRUE(tc1.IsPrefixOf(tc1y));
  EXPECT_TRUE(tc1.IsPrefixOf(tc1));  // non-strict
  EXPECT_FALSE(tc1.IsStrictPrefixOf(tc1));
  EXPECT_TRUE(tc1.IsStrictPrefixOf(tc1y));
  EXPECT_FALSE(tc1.IsPrefixOf(tc2));
  EXPECT_FALSE(tc1y.IsPrefixOf(tc1));
  EXPECT_TRUE(Path().IsPrefixOf(t));
}

TEST(PathTest, PrefixIsNotStringPrefix) {
  // "T/c1" is a string prefix of "T/c10" but not a path prefix.
  Path a = Path::MustParse("T/c1");
  Path b = Path::MustParse("T/c10");
  EXPECT_FALSE(a.IsPrefixOf(b));
}

TEST(PathTest, RelativeTo) {
  Path p = Path::MustParse("T/c1/y");
  auto rel = p.RelativeTo(Path::MustParse("T"));
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->ToString(), "c1/y");
  EXPECT_FALSE(p.RelativeTo(Path::MustParse("S1")).ok());
}

TEST(PathTest, Rebase) {
  // If T/c2 was copied from S1/a2, then T/c2/x came from S1/a2/x.
  Path p = Path::MustParse("T/c2/x");
  Path rebased = p.Rebase(Path::MustParse("T/c2"), Path::MustParse("S1/a2"));
  EXPECT_EQ(rebased.ToString(), "S1/a2/x");
}

TEST(PathTest, OrderingGroupsSubtrees) {
  std::vector<Path> paths = {
      Path::MustParse("T/c2"),   Path::MustParse("T/c1/y"),
      Path::MustParse("T/c1"),   Path::MustParse("T/c1/x"),
      Path::MustParse("T/c10"),
  };
  std::sort(paths.begin(), paths.end());
  // Lexicographic order on label sequences keeps a subtree contiguous.
  EXPECT_EQ(paths[0].ToString(), "T/c1");
  EXPECT_EQ(paths[1].ToString(), "T/c1/x");
  EXPECT_EQ(paths[2].ToString(), "T/c1/y");
  EXPECT_EQ(paths[3].ToString(), "T/c10");
  EXPECT_EQ(paths[4].ToString(), "T/c2");
}

TEST(PathTest, EqualityAndStreaming) {
  Path p = Path::MustParse("a/b");
  Path q = Path::MustParse("a/b");
  Path r = Path::MustParse("a/c");
  EXPECT_EQ(p, q);
  EXPECT_NE(p, r);
  std::ostringstream os;
  os << p;
  EXPECT_EQ(os.str(), "a/b");
}

TEST(PathTest, LabelValidation) {
  EXPECT_TRUE(IsValidLabel("c1"));
  EXPECT_TRUE(IsValidLabel("Release{20}"));
  EXPECT_FALSE(IsValidLabel(""));
  EXPECT_FALSE(IsValidLabel("a/b"));
}

}  // namespace
}  // namespace cpdb::tree
