// Unit and session-level coverage of the durability subsystem: WAL
// framing and tail truncation, checkpoint round trips, Database
// Open/Sync/Checkpoint/Close semantics, and durable editor sessions whose
// provenance tables survive a crash bit-for-bit. The fault-injection
// sweeps (kill at every byte offset, torn records, bit flips at scale)
// live in crash_recovery_test.cc.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/durable.h"
#include "storage/log_format.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "test_util.h"

namespace cpdb {
namespace {

using provenance::ProvRecord;
using provenance::Strategy;
using relstore::ColumnType;
using relstore::Database;
using relstore::Datum;
using relstore::Row;
using relstore::Schema;
using storage::Durability;
using storage::Wal;
using testutil::TempDir;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::string> ReplayAll(const std::string& path) {
  std::vector<std::string> payloads;
  auto n = Wal::Replay(path, [&](const std::string& p) {
    payloads.push_back(p);
    return Status::OK();
  });
  EXPECT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(n.value_or(0), payloads.size());
  return payloads;
}

// ----- WAL framing ---------------------------------------------------------

TEST(WalTest, AppendReplayRoundTrip) {
  TempDir dir("wal_roundtrip");
  const std::string path = dir.path() + "/wal.log";
  const std::vector<std::string> payloads = {
      "first", std::string("\x00\x01\xff binary", 10), "", "last"};
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    for (const std::string& p : payloads) {
      ASSERT_TRUE((*wal)->Append(p).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  EXPECT_EQ(ReplayAll(path), payloads);
}

TEST(WalTest, MissingFileReplaysNothing) {
  TempDir dir("wal_missing");
  EXPECT_TRUE(ReplayAll(dir.path() + "/nope.log").empty());
}

TEST(WalTest, TornTailIsTruncatedAndAppendable) {
  TempDir dir("wal_torn");
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("alpha").ok());
    ASSERT_TRUE((*wal)->Append("beta").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::string bytes = ReadFile(path);
  // A torn append: the first half of a valid frame.
  std::string torn = bytes;
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("gamma-never-synced").ok());
  }
  std::string full = ReadFile(path);
  torn = full.substr(0, bytes.size() + (full.size() - bytes.size()) / 2);
  WriteFile(path, torn);

  EXPECT_EQ(ReplayAll(path), (std::vector<std::string>{"alpha", "beta"}));
  // The tail was cut back to the last good boundary...
  EXPECT_EQ(ReadFile(path), bytes);
  // ...so the log keeps working.
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("delta").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  EXPECT_EQ(ReplayAll(path),
            (std::vector<std::string>{"alpha", "beta", "delta"}));
}

TEST(WalTest, BitFlipStopsReplayAtLastGoodRecord) {
  TempDir dir("wal_flip");
  const std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("one").ok());
    size_t rec2_start = (*wal)->AppendedBytes();
    ASSERT_TRUE((*wal)->Append("two").ok());
    ASSERT_TRUE((*wal)->Append("three").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    // Flip one payload bit inside record 2 (past its varint+crc header).
    std::string bytes = ReadFile(path);
    bytes[rec2_start + 5] = static_cast<char>(bytes[rec2_start + 5] ^ 0x01);
    WriteFile(path, bytes);
  }
  // Recovery surfaces record 1 only: a log must have no gaps, so intact
  // records past the corruption are unreachable by design.
  EXPECT_EQ(ReplayAll(path), (std::vector<std::string>{"one"}));
}

// ----- Checkpoint files ----------------------------------------------------

Database MakeTwoTableDb() {
  Database db("snapdb");
  Schema people({{"id", ColumnType::kInt64, false},
                 {"name", ColumnType::kString, false},
                 {"score", ColumnType::kDouble, true}});
  auto t1 = db.CreateTable("people", people);
  EXPECT_TRUE(t1.ok());
  EXPECT_TRUE((*t1)->CreateIndex("pk", {0}, relstore::IndexKind::kBTree,
                                 /*unique=*/true)
                  .ok());
  EXPECT_TRUE(
      (*t1)->CreateIndex("by_name", {1}, relstore::IndexKind::kHash).ok());
  EXPECT_TRUE((*t1)->Insert(Row{Datum(int64_t{1}), Datum("ada"),
                                Datum(2.5)}).ok());
  EXPECT_TRUE((*t1)->Insert(Row{Datum(int64_t{2}), Datum("grace"),
                                Datum()}).ok());
  Schema logs({{"msg", ColumnType::kString, false}});
  auto t2 = db.CreateTable("logs", logs);
  EXPECT_TRUE(t2.ok());
  EXPECT_TRUE((*t2)->Insert(Row{Datum("hello")}).ok());
  return db;
}

TEST(SnapshotTest, RoundTripRestoresSchemaIndexesAndRows) {
  TempDir dir("snap_roundtrip");
  const std::string path = dir.path() + "/CHECKPOINT";
  Database db = MakeTwoTableDb();
  ASSERT_TRUE(storage::WriteSnapshot(db, 42, path).ok());

  Database restored("snapdb");
  auto seq = storage::LoadSnapshot(&restored, path);
  ASSERT_TRUE(seq.ok()) << seq.status();
  EXPECT_EQ(*seq, 42u);
  EXPECT_EQ(restored.TableNames(),
            (std::vector<std::string>{"logs", "people"}));
  auto people = restored.GetTable("people");
  ASSERT_TRUE(people.ok());
  EXPECT_EQ((*people)->RowCount(), 2u);
  EXPECT_EQ((*people)->IndexDefs().size(), 2u);
  // The unique index is live again: a duplicate key must be rejected.
  EXPECT_TRUE((*people)
                  ->Insert(Row{Datum(int64_t{1}), Datum("dup"), Datum()})
                  .status()
                  .IsAlreadyExists());
  // Point lookup through the restored hash index.
  size_t hits = 0;
  ASSERT_TRUE((*people)
                  ->LookupEq("by_name", Row{Datum("grace")},
                             [&](const relstore::Rid&, const Row& row) {
                               EXPECT_TRUE(row[2].is_null());
                               ++hits;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(hits, 1u);
}

TEST(SnapshotTest, ChecksumMismatchIsRejected) {
  TempDir dir("snap_crc");
  const std::string path = dir.path() + "/CHECKPOINT";
  Database db = MakeTwoTableDb();
  ASSERT_TRUE(storage::WriteSnapshot(db, 7, path).ok());
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  WriteFile(path, bytes);
  Database restored("snapdb");
  auto seq = storage::LoadSnapshot(&restored, path);
  EXPECT_FALSE(seq.ok());
  EXPECT_TRUE(restored.TableNames().empty());
}

// ----- Database Open/Sync/Checkpoint/Close ---------------------------------

TEST(DurableDatabaseTest, SyncedWritesSurviveReopenUnsyncedAreLost) {
  TempDir dir("db_reopen");
  {
    auto db = Database::Open("d", dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_TRUE((*db)->durable());
    Schema s({{"k", ColumnType::kInt64, false}});
    auto t = (*db)->CreateTable("t", s);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(Row{Datum(int64_t{1})}).ok());
    ASSERT_TRUE((*db)->Sync().ok());
    // Past the barrier: this write is in the crash window.
    ASSERT_TRUE((*t)->Insert(Row{Datum(int64_t{2})}).ok());
    // Simulated kill: the unique_ptr drops without Close().
  }
  auto db = Database::Open("d", dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  auto t = (*db)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->RowCount(), 1u);
  EXPECT_EQ((*db)->durability()->stats().replayed_commits, 1u);
  EXPECT_FALSE((*db)->durability()->stats().snapshot_loaded);
}

TEST(DurableDatabaseTest, DdlAndDeletesRecoverFromLogAlone) {
  TempDir dir("db_ddl");
  {
    auto db = Database::Open("d", dir.path());
    ASSERT_TRUE(db.ok());
    Schema s({{"k", ColumnType::kInt64, false},
              {"v", ColumnType::kString, true}});
    auto t = (*db)->CreateTable("t", s);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->CreateIndex("pk", {0}, relstore::IndexKind::kBTree,
                                  /*unique=*/true)
                    .ok());
    auto rid = (*t)->Insert(Row{Datum(int64_t{1}), Datum("gone")});
    ASSERT_TRUE(rid.ok());
    ASSERT_TRUE((*t)->Insert(Row{Datum(int64_t{2}), Datum("kept")}).ok());
    ASSERT_TRUE((*t)->Delete(rid.value()).ok());
    // Delete + reinsert of the same unique key inside one commit: replay
    // must apply the delete first or the reinsert would be rejected.
    ASSERT_TRUE((*t)->Insert(Row{Datum(int64_t{1}), Datum("back")}).ok());
    ASSERT_TRUE((*db)->Sync().ok());
  }
  auto db = Database::Open("d", dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  auto t = (*db)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->RowCount(), 2u);
  EXPECT_EQ((*t)->IndexDefs().size(), 1u);
  size_t hits = 0;
  ASSERT_TRUE((*t)->LookupEq("pk", Row{Datum(int64_t{1})},
                             [&](const relstore::Rid&, const Row& row) {
                               EXPECT_EQ(row[1].AsString(), "back");
                               ++hits;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(hits, 1u);
}

TEST(DurableDatabaseTest, CheckpointTruncatesLogAndLaterCommitsReplay) {
  TempDir dir("db_ckpt");
  {
    auto db = Database::Open("d", dir.path());
    ASSERT_TRUE(db.ok());
    Schema s({{"k", ColumnType::kInt64, false}});
    auto t = (*db)->CreateTable("t", s);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(Row{Datum(int64_t{1})}).ok());
    ASSERT_TRUE((*db)->Sync().ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ(ReadFile(Durability::WalPath(dir.path())).size(), 0u);
    ASSERT_TRUE((*t)->Insert(Row{Datum(int64_t{2})}).ok());
    ASSERT_TRUE((*db)->Sync().ok());
  }
  auto db = Database::Open("d", dir.path());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->durability()->stats().snapshot_loaded);
  EXPECT_EQ((*db)->durability()->stats().replayed_commits, 1u);
  auto t = (*db)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->RowCount(), 2u);
}

TEST(DurableDatabaseTest, CloseIsCleanShutdownAndInMemoryNoops) {
  TempDir dir("db_close");
  {
    auto db = Database::Open("d", dir.path());
    ASSERT_TRUE(db.ok());
    Schema s({{"k", ColumnType::kInt64, false}});
    auto t = (*db)->CreateTable("t", s);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(Row{Datum(int64_t{9})}).ok());
    // No explicit Sync: Close must flush the pending commit itself.
    ASSERT_TRUE((*db)->Close().ok());
    EXPECT_FALSE((*db)->durable());
  }
  auto db = Database::Open("d", dir.path());
  ASSERT_TRUE(db.ok());
  auto t = (*db)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->RowCount(), 1u);

  Database mem("m");
  EXPECT_FALSE(mem.durable());
  EXPECT_TRUE(mem.Sync().ok());
  EXPECT_TRUE(mem.Close().ok());
  EXPECT_TRUE(mem.Checkpoint().IsFailedPrecondition());
  EXPECT_EQ(mem.cost().Fsyncs(), 0u);
  EXPECT_EQ(mem.cost().LogBytes(), 0u);
}

TEST(DurableDatabaseTest, SecondLiveSessionOnSameDirIsRejected) {
  TempDir dir("db_lock");
  auto first = Database::Open("d", dir.path());
  ASSERT_TRUE(first.ok());
  // A concurrent opener must not interleave its commits into our log.
  auto second = Database::Open("d", dir.path());
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsFailedPrecondition());
  // Clean Close releases the lock; a crash releases it with the process.
  ASSERT_TRUE((*first)->Close().ok());
  EXPECT_TRUE(Database::Open("d", dir.path()).ok());
}

TEST(DurableDatabaseTest, MoveRebindsTheDurabilityEngine) {
  TempDir dir("db_move");
  {
    auto opened = Database::Open("d", dir.path());
    ASSERT_TRUE(opened.ok());
    // Move the database out of the unique_ptr; the engine must follow.
    Database db = std::move(**opened);
    opened->reset();
    Schema s({{"k", ColumnType::kInt64, false}});
    auto t = db.CreateTable("t", s);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Insert(Row{Datum(int64_t{5})}).ok());
    ASSERT_TRUE(db.Sync().ok());
    // Checkpoint snapshots through the rebound back reference: if it
    // still pointed at the moved-from shell this would write 0 tables.
    ASSERT_TRUE(db.Checkpoint().ok());
  }
  auto db = Database::Open("d", dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->durability()->stats().snapshot_loaded);
  auto t = (*db)->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->RowCount(), 1u);
}

// ----- Durable editor sessions ---------------------------------------------

std::vector<ProvRecord> RunFigure3Durable(Strategy strategy,
                                          const std::string& dir,
                                          std::string* table_text) {
  auto db = Database::Open("provdb", dir);
  EXPECT_TRUE(db.ok());
  provenance::ProvBackend backend(db->get());
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  wrap::TreeSourceDb s1("S1", testutil::Figure4SourceS1());
  wrap::TreeSourceDb s2("S2", testutil::Figure4SourceS2());
  EditorOptions opts;
  opts.strategy = strategy;
  opts.first_tid = 121;
  auto editor = Editor::Create(&target, &backend, opts);
  EXPECT_TRUE(editor.ok());
  EXPECT_TRUE((*editor)->MountSource(&s1).ok());
  EXPECT_TRUE((*editor)->MountSource(&s2).ok());
  EXPECT_TRUE((*editor)->ApplyScriptText(testutil::Figure3ScriptText()).ok());
  EXPECT_TRUE((*editor)->Commit().ok());
  auto all = backend.GetAll();
  EXPECT_TRUE(all.ok());
  *table_text = provenance::RecordsToTable(*all);
  // Simulated crash on return: editor, backend, and database are dropped
  // with no Close() — only fsynced state may survive.
  return *all;
}

TEST(DurableEditorTest, Figure5TableSurvivesCrashBitForBit) {
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kHierarchical, Strategy::kTransactional,
        Strategy::kHierarchicalTransactional}) {
    SCOPED_TRACE(provenance::StrategyName(strategy));
    TempDir dir("fig5_durable");
    std::string expected_table;
    std::vector<ProvRecord> expected =
        RunFigure3Durable(strategy, dir.path(), &expected_table);
    ASSERT_FALSE(expected.empty());

    auto db = Database::Open("provdb", dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    provenance::ProvBackend backend(db->get());
    EXPECT_EQ(backend.MaxTid(), expected.back().tid);
    auto recovered = backend.GetAll();
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(*recovered, expected);
    EXPECT_EQ(provenance::RecordsToTable(*recovered), expected_table);
  }
}

TEST(DurableEditorTest, SessionContinuesAcrossReopenWithContiguousTids) {
  TempDir dir("session_continue");
  std::string ignored;
  std::vector<ProvRecord> first =
      RunFigure3Durable(Strategy::kNaive, dir.path(), &ignored);
  int64_t last_tid = first.back().tid;

  auto db = Database::Open("provdb", dir.path());
  ASSERT_TRUE(db.ok());
  provenance::ProvBackend backend(db->get());
  // The reopened target resumes from the pre-crash tree (the paper's
  // target database is an external store; here we rebuild its end state).
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  EditorOptions opts;
  opts.strategy = Strategy::kNaive;
  opts.first_tid = backend.MaxTid() + 1;
  auto editor = Editor::Create(&target, &backend, opts);
  ASSERT_TRUE(editor.ok());
  ASSERT_TRUE(
      (*editor)->Insert(tree::Path::MustParse("T"), "c9").ok());
  auto all = backend.GetAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), first.size() + 1);
  EXPECT_EQ(all->back().tid, last_tid + 1);
  EXPECT_EQ(all->back().loc.ToString(), "T/c9");
}

TEST(DurableEditorTest, FsyncOncePerTransactionAndCountersExposed) {
  TempDir dir("fsync_counts");
  auto db = Database::Open("provdb", dir.path());
  ASSERT_TRUE(db.ok());
  provenance::ProvBackend backend(db->get());
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  wrap::TreeSourceDb s1("S1", testutil::Figure4SourceS1());
  EditorOptions opts;
  opts.strategy = Strategy::kHierarchicalTransactional;
  auto editor = Editor::Create(&target, &backend, opts);
  ASSERT_TRUE(editor.ok());
  ASSERT_TRUE((*editor)->MountSource(&s1).ok());

  size_t fsyncs0 = (*db)->cost().Fsyncs();
  ASSERT_TRUE((*editor)->Insert(tree::Path::MustParse("T"), "n1").ok());
  ASSERT_TRUE((*editor)->Insert(tree::Path::MustParse("T"), "n2").ok());
  ASSERT_TRUE((*editor)->Insert(tree::Path::MustParse("T"), "n3").ok());
  // T/HT stage in memory: nothing durable happens before Commit...
  EXPECT_EQ((*db)->cost().Fsyncs(), fsyncs0);
  ASSERT_TRUE((*editor)->Commit().ok());
  // ...and the whole transaction rides exactly one fsync barrier.
  EXPECT_EQ((*db)->cost().Fsyncs(), fsyncs0 + 1);
  EXPECT_GT((*db)->cost().LogBytes(), 0u);
  EXPECT_EQ((*db)->cost().Fsyncs(),
            (*db)->durability()->stats().fsyncs);
  EXPECT_EQ((*db)->cost().LogBytes(),
            (*db)->durability()->stats().log_bytes);
}

}  // namespace
}  // namespace cpdb
