// QueryEngine::GetMod at scale, for all four storage strategies, against
// a brute-force oracle (satellite of the cursor-API redesign).
//
// A >=10k-node MiMI-like target takes a randomized update script; then
// GetMod is probed across the final tree and checked two ways:
//
//  - results: against an oracle computed WITHOUT the query path. For the
//    strategies whose reads involve inference (N, H, HT) the oracle is
//    the hierarchical expansion of the stored table (ExpandToFull over
//    the archive's version trees) filtered to the probe's subtree; for
//    the flat transactional store the oracle is a linear filter over the
//    full table (its documented GetMod contract: explicit records under
//    p, no inference).
//
//  - round trips: via CostModel counters. The redesigned read path must
//    issue O(depth + 1) backend round trips — one batched ancestor
//    statement plus ceil(rows/batch) fetches of ONE subtree scan — and
//    never the per-descendant O(n) of the pre-cursor path.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "test_util.h"
#include "util/rng.h"

namespace cpdb {
namespace {

using provenance::ProvCursor;
using provenance::ProvRecord;
using provenance::Strategy;
using tree::Path;

constexpr size_t kTargetEntries = 1200;  // >= 10k nodes (see assertion)
constexpr size_t kSteps = 300;
constexpr size_t kTxnLen = 5;

std::unique_ptr<testutil::Session> RunScaleSession(Strategy strategy) {
  auto s = std::make_unique<testutil::Session>();
  s->prov_db = std::make_unique<relstore::Database>("provdb");
  s->backend = std::make_unique<provenance::ProvBackend>(s->prov_db.get());
  s->target = std::make_unique<wrap::TreeTargetDb>(
      "T", workload::GenMimiLike(kTargetEntries, /*seed=*/91));
  s->s1 = std::make_unique<wrap::TreeSourceDb>(
      "S1", workload::GenOrganelleLike(800, /*seed=*/92));
  EditorOptions opts;
  opts.strategy = strategy;
  opts.enable_archive = true;  // the oracle replays version trees
  opts.archive_checkpoint_every = 8;
  auto editor = Editor::Create(s->target.get(), s->backend.get(), opts);
  EXPECT_TRUE(editor.ok());
  s->editor = std::move(editor).value();
  EXPECT_TRUE(s->editor->MountSource(s->s1.get()).ok());

  workload::GenOptions gen;
  gen.pattern = workload::Pattern::kMix;
  gen.seed = 1337;
  size_t applied = testutil::RunRandomWorkload(s.get(), gen, kSteps, kTxnLen);
  EXPECT_GT(applied, kSteps / 2);
  return s;
}

/// Probe locations: the target root, every depth-2 entry of a sample, and
/// a spread of random deeper paths from the final tree.
std::vector<Path> ProbeLocs(const testutil::Session& s) {
  std::vector<Path> all;
  const tree::Tree* target = s.editor->TargetView();
  target->Visit([&](const Path& rel, const tree::Tree&) {
    if (!rel.IsRoot()) {
      all.push_back(Path({std::string("T")}).Concat(rel));
    }
  });
  EXPECT_GE(all.size(), 10000u) << "target did not reach 10k nodes";
  std::vector<Path> probes;
  if (all.empty()) return probes;  // EXPECT above already flagged it
  probes.push_back(Path::MustParse("T"));
  size_t stride = std::max<size_t>(1, all.size() / 8);
  for (size_t i = 0; i < all.size() && probes.size() < 9; i += stride) {
    if (all[i].Depth() == 2) probes.push_back(all[i]);
  }
  Rng rng(17);
  for (size_t i = 0; i < 24; ++i) {
    probes.push_back(all[rng.NextIndex(all.size())]);
  }
  return probes;
}

std::vector<int64_t> TidsUnder(const std::vector<ProvRecord>& records,
                               const Path& p) {
  std::set<int64_t> tids;
  for (const ProvRecord& r : records) {
    if (p.IsPrefixOf(r.loc)) tids.insert(r.tid);
  }
  return std::vector<int64_t>(tids.begin(), tids.end());
}

void CheckStrategy(Strategy strategy) {
  SCOPED_TRACE(provenance::StrategyName(strategy));
  auto s = RunScaleSession(strategy);
  ASSERT_NE(s, nullptr);
  ASSERT_GT(s->editor->store()->RecordCount(), 100u);

  auto stored = s->backend->GetAll();
  ASSERT_TRUE(stored.ok());
  auto versions = s->editor->archive()->MakeVersionFn();

  // Oracle basis: the expanded (naive-equivalent) table for the inferring
  // strategies, the raw table for the flat transactional store.
  std::vector<ProvRecord> basis;
  if (strategy == Strategy::kTransactional) {
    basis = *stored;
  } else {
    auto expanded = provenance::ExpandToFull(*stored, versions);
    ASSERT_TRUE(expanded.ok()) << expanded.status();
    basis = std::move(expanded).value();
  }

  bool hierarchical = s->editor->store()->IsHierarchical();
  for (const Path& p : ProbeLocs(*s)) {
    SCOPED_TRACE(p.ToString());
    relstore::CostSnapshot before = s->prov_db->cost().Snap();
    auto mod = s->editor->query()->GetMod(p, versions);
    relstore::CostSnapshot after = s->prov_db->cost().Snap();
    ASSERT_TRUE(mod.ok()) << mod.status();

    // ----- results vs brute force -----
    EXPECT_EQ(*mod, TidsUnder(basis, p));

    // ----- round trips: O(depth + 1), not O(descendants) -----
    size_t rows_under = 0;
    std::set<std::string> locs_under;
    for (const ProvRecord& r : *stored) {
      if (p.IsPrefixOf(r.loc)) {
        ++rows_under;
        locs_under.insert(r.loc.ToString());
      }
    }
    size_t scan_trips =
        std::max<size_t>(1, (rows_under + ProvCursor::kDefaultBatch - 1) /
                                ProvCursor::kDefaultBatch);
    size_t ancestor_trips = (hierarchical && p.Depth() > 2) ? 1 : 0;
    size_t calls = after.calls - before.calls;
    // +1 slack: a scan whose row count is an exact batch multiple needs
    // one extra (empty) fetch to observe the end of the stream.
    EXPECT_LE(calls, scan_trips + ancestor_trips + 1);
    // The pre-redesign path paid one trip per descendant location (plus
    // one per ancestor level); on populous subtrees the cursor path must
    // be strictly cheaper.
    if (locs_under.size() > 8) {
      EXPECT_LT(calls, 1 + locs_under.size());
    }
  }
}

TEST(GetModScaleTest, Naive) { CheckStrategy(Strategy::kNaive); }
TEST(GetModScaleTest, Hierarchical) {
  CheckStrategy(Strategy::kHierarchical);
}
TEST(GetModScaleTest, Transactional) {
  CheckStrategy(Strategy::kTransactional);
}
TEST(GetModScaleTest, HierarchicalTransactional) {
  CheckStrategy(Strategy::kHierarchicalTransactional);
}

}  // namespace
}  // namespace cpdb
