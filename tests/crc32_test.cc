#include "util/crc32.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cpdb {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string("")), 0u);
  // From the zlib test suite.
  EXPECT_EQ(Crc32(std::string("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(std::string("abc")), 0x352441C2u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  std::string all = "hello, durable world";
  uint32_t one_shot = Crc32(all);
  uint32_t chained = Crc32(all.data(), 5);
  chained = Crc32(all.data() + 5, all.size() - 5, chained);
  EXPECT_EQ(chained, one_shot);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data(64, '\x5a');
  uint32_t clean = Crc32(data);
  for (size_t byte : {size_t{0}, data.size() / 2, data.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32(flipped), clean)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_LE(buf.size(), kMaxVarint64Bytes);
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, EncodingIsCompactAndConcatenable) {
  std::string buf;
  PutVarint64(&buf, 5);
  EXPECT_EQ(buf.size(), 1u);  // one byte below 128
  PutVarint64(&buf, 300);
  PutVarint64(&buf, 0);
  size_t pos = 0;
  uint64_t a, b, c;
  ASSERT_TRUE(GetVarint64(buf, &pos, &a));
  ASSERT_TRUE(GetVarint64(buf, &pos, &b));
  ASSERT_TRUE(GetVarint64(buf, &pos, &c));
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(b, 300u);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncatedInputFailsWithoutAdvancing) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.pop_back();  // cut the terminating byte
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint64(buf, &pos, &out));
  EXPECT_EQ(pos, 0u);
}

TEST(VarintTest, OverlongEncodingRejected) {
  // Eleven continuation bytes can never terminate a 64-bit varint.
  std::string buf(11, '\x80');
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint64(buf, &pos, &out));
}

TEST(LengthPrefixedTest, RoundTripsBinaryPayloads) {
  std::string payload("\x00\xff framed \n bytes", 17);
  std::string buf;
  PutLengthPrefixed(&buf, payload);
  PutLengthPrefixed(&buf, "");
  size_t pos = 0;
  std::string a, b;
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &a));
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &b));
  EXPECT_EQ(a, payload);
  EXPECT_EQ(b, "");
  EXPECT_EQ(pos, buf.size());
}

TEST(LengthPrefixedTest, TruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "twelve bytes");
  buf.resize(buf.size() - 3);
  size_t pos = 0;
  std::string out;
  EXPECT_FALSE(GetLengthPrefixed(buf, &pos, &out));
  EXPECT_EQ(pos, 0u);
}

}  // namespace
}  // namespace cpdb
