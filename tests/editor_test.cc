#include "cpdb/editor.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cpdb {
namespace {

using provenance::Strategy;
using testutil::MakeFigureSession;
using tree::Path;

TEST(EditorTest, RejectsUpdatesOutsideTarget) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  // Writing into a source database is forbidden (Section 2: updates only
  // in a subtree of T).
  EXPECT_TRUE(s->editor->Insert(Path::MustParse("S1"), "x")
                  .IsInvalidArgument());
  EXPECT_TRUE(s->editor
                  ->CopyPaste(Path::MustParse("S1/a1"),
                              Path::MustParse("S2/b1"))
                  .IsInvalidArgument());
  // Deleting a whole database is forbidden.
  EXPECT_TRUE(s->editor->Delete(Path(), "T").IsInvalidArgument());
  // Overwriting the target root is forbidden.
  EXPECT_TRUE(s->editor
                  ->CopyPaste(Path::MustParse("S1/a1"), Path::MustParse("T"))
                  .IsInvalidArgument());
}

TEST(EditorTest, CopyFromAnySourceIntoTarget) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->editor
                  ->CopyPaste(Path::MustParse("S2/b1"),
                              Path::MustParse("T/c9"))
                  .ok());
  EXPECT_TRUE(s->editor->universe().Contains(Path::MustParse("T/c9/x")));
}

TEST(EditorTest, FailedUpdateLeavesNoTrace) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  size_t rows_before = s->editor->store()->RecordCount();
  tree::Tree before = s->editor->universe().Clone();
  // Duplicate edge: c1 already exists.
  EXPECT_FALSE(s->editor->Insert(Path::MustParse("T"), "c1").ok());
  EXPECT_TRUE(s->editor->universe().Equals(before));
  EXPECT_EQ(s->editor->store()->RecordCount(), rows_before);
}

TEST(EditorTest, MountingAfterFirstUpdateFails) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->Insert(Path::MustParse("T"), "fresh").ok());
  wrap::TreeSourceDb late("S9", tree::Tree());
  EXPECT_TRUE(s->editor->MountSource(&late).IsFailedPrecondition());
}

TEST(EditorTest, DuplicateOrCollidingMountsFail) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  wrap::TreeSourceDb dup("S1", tree::Tree());
  EXPECT_TRUE(s->editor->MountSource(&dup).IsAlreadyExists());
  wrap::TreeSourceDb clash("T", tree::Tree());
  EXPECT_TRUE(s->editor->MountSource(&clash).IsInvalidArgument());
}

TEST(EditorTest, AbortRevertsUniverseAndProvlist) {
  auto s = MakeFigureSession(Strategy::kHierarchicalTransactional);
  ASSERT_NE(s, nullptr);
  tree::Tree before = s->editor->universe().Clone();
  ASSERT_TRUE(s->editor->Insert(Path::MustParse("T"), "tmp").ok());
  ASSERT_TRUE(s->editor
                  ->CopyPaste(Path::MustParse("S1/a1"),
                              Path::MustParse("T/tmp2"))
                  .ok());
  ASSERT_TRUE(s->editor->Delete(Path::MustParse("T"), "c1").ok());
  EXPECT_EQ(s->editor->PendingOps(), 3u);
  ASSERT_TRUE(s->editor->Abort().ok());
  EXPECT_TRUE(s->editor->universe().Equals(before));
  EXPECT_EQ(s->editor->PendingOps(), 0u);
  EXPECT_EQ(s->editor->store()->RecordCount(), 0u);
  // The native target never saw the aborted ops.
  EXPECT_TRUE(s->target->content().Equals(*s->editor->TargetView()));
}

TEST(EditorTest, AbortFailsForPerOpStrategies) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->Insert(Path::MustParse("T"), "x").ok());
  EXPECT_TRUE(s->editor->Abort().IsFailedPrecondition());
}

TEST(EditorTest, CommitBoundariesControlTransactionGranularity) {
  auto s = MakeFigureSession(Strategy::kTransactional, /*first_tid=*/1);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->Insert(Path::MustParse("T"), "a").ok());
  ASSERT_TRUE(s->editor->Commit().ok());
  ASSERT_TRUE(s->editor->Insert(Path::MustParse("T"), "b").ok());
  ASSERT_TRUE(s->editor->Insert(Path::MustParse("T"), "c").ok());
  ASSERT_TRUE(s->editor->Commit().ok());
  auto records = s->editor->store()->backend()->GetAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].tid, 1);
  EXPECT_EQ((*records)[1].tid, 2);
  EXPECT_EQ((*records)[2].tid, 2);
}

TEST(EditorTest, TemporaryDataLeavesNoTrace) {
  // Insert and delete within one transaction: nothing committed
  // ("no links corresponding to temporary data ... are stored").
  auto s = MakeFigureSession(Strategy::kTransactional);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->Insert(Path::MustParse("T"), "tmp").ok());
  ASSERT_TRUE(s->editor->Delete(Path::MustParse("T"), "tmp").ok());
  ASSERT_TRUE(s->editor->Commit().ok());
  EXPECT_EQ(s->editor->store()->RecordCount(), 0u);
}

TEST(EditorTest, CopyThenRecopyKeepsNetProvenance) {
  // The paper's example: copy from S1, reconsider, use S2 instead —
  // same provenance as copying only from S2.
  auto s = MakeFigureSession(Strategy::kTransactional);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor
                  ->CopyPaste(Path::MustParse("S1/a1"),
                              Path::MustParse("T/e"))
                  .ok());
  ASSERT_TRUE(s->editor
                  ->CopyPaste(Path::MustParse("S2/b1"),
                              Path::MustParse("T/e"))
                  .ok());
  ASSERT_TRUE(s->editor->Commit().ok());
  auto records = s->editor->store()->backend()->GetAll();
  ASSERT_TRUE(records.ok());
  for (const auto& r : *records) {
    EXPECT_EQ(r.src.At(0), "S2") << r.ToString();
  }
}

TEST(EditorTest, ScriptTextDrivesTheEditor) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor
                  ->ApplyScriptText("ins {w : {}} into T;"
                                    "copy S1/a2 into T/w/sub")
                  .ok());
  EXPECT_TRUE(s->editor->universe().Contains(Path::MustParse("T/w/sub/x")));
  EXPECT_FALSE(s->editor->ApplyScriptText("bogus nonsense").ok());
}

TEST(EditorTest, ArchiveRecordsEveryCommittedVersion) {
  auto s = MakeFigureSession(Strategy::kHierarchicalTransactional,
                             /*first_tid=*/121, /*enable_archive=*/true);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->ApplyScriptText(testutil::Figure3ScriptText()).ok());
  ASSERT_TRUE(s->editor->Commit().ok());
  auto* arch = s->editor->archive();
  ASSERT_NE(arch, nullptr);
  EXPECT_EQ(arch->base_version(), 120);
  EXPECT_EQ(arch->last_version(), 121);
  auto v121 = arch->GetVersion(121);
  ASSERT_TRUE(v121.ok());
  EXPECT_TRUE(v121->Equals(s->editor->universe()));
  auto v120 = arch->GetVersion(120);
  ASSERT_TRUE(v120.ok());
  EXPECT_TRUE(v120->Contains(Path::MustParse("T/c5")));
}

TEST(EditorTest, TotalOpsCounts) {
  auto s = MakeFigureSession(Strategy::kNaive);
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->editor->ApplyScriptText(testutil::Figure3ScriptText()).ok());
  EXPECT_EQ(s->editor->TotalOps(), 10u);
}

}  // namespace
}  // namespace cpdb
