// Fault-injection coverage of crash recovery: a golden curation session
// runs against ONE durable Database holding both the curated target table
// and the provenance store (so data and provenance share the log), the
// WAL is captured at every commit boundary, and then recovery is attacked
// with every prefix of the log (kill at a batch boundary), arbitrary
// byte-level truncations (kill mid-record), bit flips (media corruption),
// and a crash in the window between writing a checkpoint and truncating
// the log. Every recovered state must equal the golden state as of some
// committed transaction — with data, provenance, and QueryEngine::GetMod
// agreeing — never a torn hybrid.

#include <algorithm>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/durable.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace cpdb {
namespace {

using provenance::ProvRecord;
using provenance::Strategy;
using relstore::Database;
using relstore::Row;
using storage::Durability;
using testutil::TempDir;
using tree::Path;

constexpr Strategy kStrategies[] = {
    Strategy::kNaive, Strategy::kHierarchical, Strategy::kTransactional,
    Strategy::kHierarchicalTransactional};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Creates (first open) or adopts the curated table shared with the
/// provenance store.
void EnsureProtTable(Database* db) {
  if (db->GetTable("prot").ok()) return;
  relstore::Schema schema(
      {{"id", relstore::ColumnType::kString, false},
       {"name", relstore::ColumnType::kString, true},
       {"loc", relstore::ColumnType::kString, true}});
  ASSERT_TRUE(db->CreateTable("prot", schema).ok());
}

std::vector<Row> SortedProtRows(Database* db) {
  std::vector<Row> rows;
  auto table = db->GetTable("prot");
  if (!table.ok()) return rows;
  (*table)->Scan([&](const relstore::Rid&, const Row& row) {
    rows.push_back(row);
    return true;
  });
  std::sort(rows.begin(), rows.end(), relstore::RowLess);
  return rows;
}

/// What a freshly attached reader sees: a new backend + editor over the
/// database's current tables — exactly the view a recovered session gets.
/// The editor only reads; GetMod answers over the rebuilt universe.
std::vector<int64_t> GetModView(Database* db, Strategy strategy) {
  provenance::ProvBackend backend(db);
  wrap::RelationalTargetDb target("T", db, {"prot"});
  EditorOptions opts;
  opts.strategy = strategy;
  opts.first_tid = backend.MaxTid() + 1;
  auto editor = Editor::Create(&target, &backend, opts);
  EXPECT_TRUE(editor.ok());
  auto mod = (*editor)->query()->GetMod(Path::MustParse("T/prot"));
  EXPECT_TRUE(mod.ok()) << mod.status();
  return mod.value_or({});
}

/// Golden state as of one committed transaction.
struct Capture {
  std::string wal_bytes;
  std::vector<ProvRecord> prov;
  std::vector<Row> prot_rows;
  std::vector<int64_t> getmod;
};

/// Runs the golden session: ten updates mixing tuple inserts, field sets,
/// and deletes (including an insert+delete of p3 inside one transaction,
/// which T nets away). Captures the WAL and the expected state after
/// every commit record. Ends in a simulated crash (no Close).
std::vector<Capture> RunGolden(Strategy strategy, const std::string& dir,
                               const std::function<void(Database*)>&
                                   mid_run_hook = nullptr) {
  std::vector<Capture> captures;
  auto opened = Database::Open("curated", dir);
  EXPECT_TRUE(opened.ok());
  std::unique_ptr<Database> db = std::move(opened).value();
  EnsureProtTable(db.get());
  provenance::ProvBackend backend(db.get());
  wrap::RelationalTargetDb target("T", db.get(), {"prot"});
  EditorOptions opts;
  opts.strategy = strategy;
  auto editor_or = Editor::Create(&target, &backend, opts);
  EXPECT_TRUE(editor_or.ok());
  std::unique_ptr<Editor> editor = std::move(editor_or).value();

  auto maybe_capture = [&] {
    size_t commits = db->durability()->stats().commits;
    ASSERT_LE(commits, captures.size() + 1);  // one record per commit
    if (commits == captures.size()) return;   // nothing new sealed
    Capture cap;
    cap.wal_bytes = ReadFile(Durability::WalPath(dir));
    auto all = backend.GetAll();
    ASSERT_TRUE(all.ok());
    cap.prov = std::move(all).value();
    cap.prot_rows = SortedProtRows(db.get());
    cap.getmod = GetModView(db.get(), strategy);
    captures.push_back(std::move(cap));
  };

  const Path prot = Path::MustParse("T/prot");
  const std::vector<std::function<Status()>> ops = {
      [&] { return editor->Insert(prot, "p1"); },
      [&] {
        return editor->Insert(Path::MustParse("T/prot/p1"), "name",
                              tree::Value("alpha"));
      },
      [&] { return editor->Insert(prot, "p2"); },
      [&] {
        return editor->Insert(Path::MustParse("T/prot/p2"), "loc",
                              tree::Value("nucleus"));
      },
      [&] { return editor->Insert(prot, "p3"); },
      [&] { return editor->Delete(prot, "p3"); },
      [&] {
        return editor->Insert(Path::MustParse("T/prot/p2"), "name",
                              tree::Value("beta"));
      },
      [&] { return editor->Delete(prot, "p1"); },
      [&] { return editor->Insert(prot, "p4"); },
      [&] {
        return editor->Insert(Path::MustParse("T/prot/p4"), "loc",
                              tree::Value("er"));
      },
  };
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_TRUE(ops[i]().ok()) << "op " << i;
    // T/HT: commit every 3 ops and at the end; N/H auto-commit per op.
    if ((i + 1) % 3 == 0 || i + 1 == ops.size()) {
      EXPECT_TRUE(editor->Commit().ok());
    }
    maybe_capture();
    if (testing::Test::HasFatalFailure()) return captures;
    if (mid_run_hook != nullptr && i + 1 == ops.size() / 2) {
      mid_run_hook(db.get());
    }
  }
  return captures;  // crash: no Close(), nothing flushed beyond the log
}

/// Opens a recovered database and asserts it matches `expected` exactly:
/// provenance table, curated rows, and the GetMod answer.
void ExpectStateEquals(Database* db, const Capture& expected,
                       Strategy strategy) {
  provenance::ProvBackend backend(db);
  auto prov = backend.GetAll();
  ASSERT_TRUE(prov.ok());
  EXPECT_EQ(*prov, expected.prov);
  EXPECT_EQ(SortedProtRows(db), expected.prot_rows);
  EXPECT_EQ(GetModView(db, strategy), expected.getmod);
}

/// Recovers from raw WAL bytes in a fresh directory; returns the opened
/// database (asserting the open itself succeeded).
std::unique_ptr<Database> RecoverFromWal(const TempDir& dir,
                                         const std::string& wal_bytes) {
  WriteFile(Durability::WalPath(dir.path()), wal_bytes);
  auto db = Database::Open("curated", dir.path());
  EXPECT_TRUE(db.ok()) << db.status();
  return db.ok() ? std::move(db).value() : nullptr;
}

TEST(CrashRecoveryTest, KillAtEveryCommitBoundaryRecoversThatCommit) {
  for (Strategy strategy : kStrategies) {
    SCOPED_TRACE(provenance::StrategyName(strategy));
    TempDir golden_dir("golden");
    std::vector<Capture> captures = RunGolden(strategy, golden_dir.path());
    ASSERT_FALSE(captures.empty());
    for (size_t i = 0; i < captures.size(); ++i) {
      SCOPED_TRACE("commit " + std::to_string(i + 1));
      TempDir dir("boundary");
      auto db = RecoverFromWal(dir, captures[i].wal_bytes);
      ASSERT_NE(db, nullptr);
      EXPECT_EQ(db->durability()->stats().replayed_commits, i + 1);
      ExpectStateEquals(db.get(), captures[i], strategy);
    }
  }
}

TEST(CrashRecoveryTest, KillAtArbitraryByteOffsetsRecoversLastGoodCommit) {
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kHierarchicalTransactional}) {
    SCOPED_TRACE(provenance::StrategyName(strategy));
    TempDir golden_dir("golden");
    std::vector<Capture> captures = RunGolden(strategy, golden_dir.path());
    ASSERT_FALSE(captures.empty());
    const std::string& full = captures.back().wal_bytes;
    // Sweep truncation lengths with a stride coprime to typical record
    // sizes, plus the exact end.
    for (size_t len = 0; len <= full.size(); len += 13) {
      SCOPED_TRACE("truncated to " + std::to_string(len));
      TempDir dir("sweep");
      auto db = RecoverFromWal(dir, full.substr(0, len));
      ASSERT_NE(db, nullptr);
      size_t r = db->durability()->stats().replayed_commits;
      ASSERT_LE(r, captures.size());
      if (r == 0) {
        EXPECT_TRUE(db->TableNames().empty());
        continue;
      }
      ExpectStateEquals(db.get(), captures[r - 1], strategy);
    }
  }
}

TEST(CrashRecoveryTest, BitFlipLosesOnlyCommitsFromTheFlipOnwards) {
  TempDir golden_dir("golden");
  std::vector<Capture> captures =
      RunGolden(Strategy::kNaive, golden_dir.path());
  ASSERT_GE(captures.size(), 3u);
  const std::string& full = captures.back().wal_bytes;
  // Flip one bit somewhere inside each third of the log.
  for (size_t at : {full.size() / 6, full.size() / 2, full.size() - 2}) {
    SCOPED_TRACE("flip at byte " + std::to_string(at));
    std::string bytes = full;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x10);
    TempDir dir("flip");
    auto db = RecoverFromWal(dir, bytes);
    ASSERT_NE(db, nullptr);
    size_t r = db->durability()->stats().replayed_commits;
    ASSERT_LT(r, captures.size());  // the flipped commit must not survive
    if (r > 0) {
      ExpectStateEquals(db.get(), captures[r - 1], Strategy::kNaive);
    }
  }
}

TEST(CrashRecoveryTest, CrashBetweenCheckpointAndLogTruncateIsIdempotent) {
  // The hook writes a checkpoint mid-run but "crashes" before the log is
  // truncated: recovery sees a snapshot AND a log whose early records are
  // already inside it, and must skip them (seq <= snapshot seq) instead
  // of applying them twice.
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kTransactional}) {
    SCOPED_TRACE(provenance::StrategyName(strategy));
    TempDir dir("ckpt_crash");
    std::vector<Capture> captures =
        RunGolden(strategy, dir.path(), [&](Database* db) {
          ASSERT_TRUE(storage::WriteSnapshot(
                          *db, db->durability()->stats().last_seq,
                          Durability::CheckpointPath(dir.path()))
                          .ok());
        });
    ASSERT_FALSE(captures.empty());
    auto db = Database::Open("curated", dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_TRUE((*db)->durability()->stats().snapshot_loaded);
    // Some commits came from the snapshot, the rest from the log tail...
    EXPECT_LT((*db)->durability()->stats().replayed_commits,
              captures.size());
    // ...and the combination is exactly the last committed transaction.
    ExpectStateEquals(db->get(), captures.back(), strategy);
  }
}

TEST(CrashRecoveryTest, MidRunCheckpointThenCrashRecoversFully) {
  for (Strategy strategy :
       {Strategy::kHierarchical, Strategy::kHierarchicalTransactional}) {
    SCOPED_TRACE(provenance::StrategyName(strategy));
    TempDir dir("ckpt_mid");
    std::vector<Capture> captures =
        RunGolden(strategy, dir.path(), [](Database* db) {
          ASSERT_TRUE(db->Checkpoint().ok());
        });
    ASSERT_FALSE(captures.empty());
    auto db = Database::Open("curated", dir.path());
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_TRUE((*db)->durability()->stats().snapshot_loaded);
    ExpectStateEquals(db->get(), captures.back(), strategy);
  }
}

}  // namespace
}  // namespace cpdb
