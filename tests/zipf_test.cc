// The rejection-free Zipfian sampler (src/workload/zipf.h): determinism
// from a seed, the analytic mass function, and — the property the load
// rig's skew depends on — sampled frequencies pinned against Probability.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "workload/zipf.h"

namespace cpdb::workload {
namespace {

TEST(ZipfTest, DeterministicFromSeed) {
  ZipfGenerator a(1000, 0.99, 7);
  ZipfGenerator b(1000, 0.99, 7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
  ZipfGenerator c(1000, 0.99, 7);
  ZipfGenerator d(1000, 0.99, 7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(c.NextScrambled(), d.NextScrambled());
}

TEST(ZipfTest, RanksStayInRange) {
  ZipfGenerator gen(37, 0.9, 11);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_LT(gen.Next(), 37u);
    ASSERT_LT(gen.NextScrambled(), 37u);
  }
}

TEST(ZipfTest, ProbabilityIsANormalizedDecreasingMass) {
  ZipfGenerator gen(500, 0.99, 1);
  double sum = 0;
  for (uint64_t r = 0; r < gen.n(); ++r) {
    sum += gen.Probability(r);
    if (r > 0) EXPECT_LT(gen.Probability(r), gen.Probability(r - 1));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

/// The skew pin: with theta=0.99 over 1000 keys, the sampled frequency
/// of the hottest ranks and the total mass on the top decile must match
/// the analytic distribution. This is what makes the load rig's
/// "zipf 0.99" knob mean the same thing on every machine.
TEST(ZipfTest, SampledFrequenciesMatchAnalyticMass) {
  constexpr uint64_t kN = 1000;
  constexpr size_t kSamples = 400000;
  ZipfGenerator gen(kN, 0.99, 12345);
  std::vector<size_t> hist(kN, 0);
  for (size_t i = 0; i < kSamples; ++i) hist[gen.Next()]++;

  // Ranks 0 and 1 are exact in the Gray inverse-CDF construction (they
  // get dedicated branches), so pin them tightly; deeper ranks come from
  // the continuous approximation, which runs up to ~20% hot at small
  // ranks, so give them proportionate slack.
  for (uint64_t r : {0ull, 1ull}) {
    double expected = gen.Probability(r) * kSamples;
    EXPECT_NEAR(hist[r], expected, expected * 0.05 + 30) << "rank " << r;
  }
  for (uint64_t r : {2ull, 10ull}) {
    double expected = gen.Probability(r) * kSamples;
    EXPECT_NEAR(hist[r], expected, expected * 0.25 + 50) << "rank " << r;
  }
  // Top decile mass: the signature of heavy skew (~0.69 analytic for
  // theta=0.99 over 1000 keys; the sampled mass lands close because the
  // approximation's per-rank error largely cancels over the decile).
  double analytic_top = 0;
  size_t sampled_top = 0;
  for (uint64_t r = 0; r < kN / 10; ++r) {
    analytic_top += gen.Probability(r);
    sampled_top += hist[r];
  }
  EXPECT_GT(analytic_top, 0.65);
  EXPECT_NEAR(static_cast<double>(sampled_top) / kSamples, analytic_top,
              0.04);
}

TEST(ZipfTest, ThetaZeroDegeneratesToUniform) {
  constexpr uint64_t kN = 16;
  constexpr size_t kSamples = 160000;
  ZipfGenerator gen(kN, 0.0, 99);
  std::vector<size_t> hist(kN, 0);
  for (size_t i = 0; i < kSamples; ++i) hist[gen.Next()]++;
  for (uint64_t r = 0; r < kN; ++r) {
    EXPECT_NEAR(hist[r], kSamples / kN, kSamples / kN * 0.06) << "rank " << r;
  }
}

/// Scrambling reassigns which key is hot but must not change how hot the
/// hot key is: the largest scrambled frequency matches Probability(0)
/// (up to FNV collisions merging two ranks, which can only add mass).
TEST(ZipfTest, ScramblingPreservesTheFrequencyProfile) {
  constexpr uint64_t kN = 1000;
  constexpr size_t kSamples = 400000;
  ZipfGenerator gen(kN, 0.99, 777);
  std::vector<size_t> hist(kN, 0);
  for (size_t i = 0; i < kSamples; ++i) hist[gen.NextScrambled()]++;
  size_t hottest = *std::max_element(hist.begin(), hist.end());
  double expected = gen.Probability(0) * kSamples;
  EXPECT_GT(hottest, expected * 0.9);
  EXPECT_LT(hottest, expected * 1.5);  // headroom for a collision merge
}

}  // namespace
}  // namespace cpdb::workload
