// Tests of the batched, group-committed write path: Table::ApplyBatch
// mechanics, per-op-vs-batched equivalence across all four strategies,
// abort-mid-batch atomicity, and the O(1)-flush acceptance criteria
// asserted through the CostModel's write-side counters.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "cpdb/cpdb.h"
#include "relstore/write_batch.h"
#include "test_util.h"

namespace cpdb {
namespace {

using provenance::ProvRecord;
using provenance::Strategy;
using relstore::ColumnType;
using relstore::Datum;
using relstore::Rid;
using relstore::Row;
using relstore::Schema;
using relstore::Table;
using relstore::WriteBatch;
using testutil::Session;

// ---------------------------------------------------------------------------
// Table::ApplyBatch mechanics
// ---------------------------------------------------------------------------

Table MakeKvTable() {
  Table t("kv", Schema({{"K", ColumnType::kInt64, false},
                        {"V", ColumnType::kString, true}}));
  EXPECT_TRUE(
      t.CreateIndex("pk", {0}, relstore::IndexKind::kBTree, true).ok());
  return t;
}

TEST(TableApplyBatchTest, MixedInsertsAndDeletes) {
  Table t = MakeKvTable();
  std::vector<Rid> rids;
  for (int64_t k = 0; k < 10; ++k) {
    auto rid = t.Insert(Row{Datum(k), Datum("v" + std::to_string(k))});
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  WriteBatch batch;
  batch.Delete(rids[3]);
  batch.Delete(rids[7]);
  for (int64_t k = 10; k < 15; ++k) {
    batch.Insert(Row{Datum(k), Datum("v" + std::to_string(k))});
  }
  auto applied = t.ApplyBatch(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value(), 7u);
  EXPECT_EQ(t.RowCount(), 13u);
  // Index is consistent: deleted keys gone, new keys present, in order.
  std::vector<int64_t> keys;
  ASSERT_TRUE(t.ScanIndex("pk", [&](const Rid&, const Row& row) {
                 keys.push_back(row[0].AsInt());
                 return true;
               }).ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{0, 1, 2, 4, 5, 6, 8, 9, 10, 11, 12,
                                        13, 14}));
}

TEST(TableApplyBatchTest, ReinsertingDeletedUniqueKeyInOneBatchIsLegal) {
  Table t = MakeKvTable();
  auto rid = t.Insert(Row{Datum(int64_t{1}), Datum("old")});
  ASSERT_TRUE(rid.ok());
  WriteBatch batch;
  batch.Delete(rid.value());
  batch.Insert(Row{Datum(int64_t{1}), Datum("new")});
  ASSERT_TRUE(t.ApplyBatch(batch).ok());
  EXPECT_EQ(t.RowCount(), 1u);
  std::string v;
  ASSERT_TRUE(t.LookupEq("pk", Row{Datum(int64_t{1})},
                         [&](const Rid&, const Row& row) {
                           v = row[1].AsString();
                           return true;
                         })
                  .ok());
  EXPECT_EQ(v, "new");
}

TEST(TableApplyBatchTest, FailedBatchLeavesTableUntouched) {
  Table t = MakeKvTable();
  ASSERT_TRUE(t.Insert(Row{Datum(int64_t{5}), Datum("keep")}).ok());

  // Duplicate unique key against the table.
  WriteBatch clash;
  clash.Insert(Row{Datum(int64_t{6}), Datum("a")});
  clash.Insert(Row{Datum(int64_t{5}), Datum("dup")});
  EXPECT_FALSE(t.ApplyBatch(clash).ok());
  EXPECT_EQ(t.RowCount(), 1u);

  // Duplicate unique key within the batch.
  WriteBatch twin;
  twin.Insert(Row{Datum(int64_t{7}), Datum("a")});
  twin.Insert(Row{Datum(int64_t{7}), Datum("b")});
  EXPECT_FALSE(t.ApplyBatch(twin).ok());
  EXPECT_EQ(t.RowCount(), 1u);

  // Deleting a missing rid.
  WriteBatch ghost;
  ghost.Insert(Row{Datum(int64_t{8}), Datum("a")});
  ghost.Delete(Rid{999, 0});
  EXPECT_FALSE(t.ApplyBatch(ghost).ok());
  EXPECT_EQ(t.RowCount(), 1u);

  // Schema violation.
  WriteBatch bad;
  bad.Insert(Row{Datum("not-an-int"), Datum("a")});
  EXPECT_FALSE(t.ApplyBatch(bad).ok());
  EXPECT_EQ(t.RowCount(), 1u);

  // The surviving row is still indexed.
  size_t hits = 0;
  ASSERT_TRUE(t.LookupEq("pk", Row{Datum(int64_t{5})},
                         [&](const Rid&, const Row&) {
                           ++hits;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(hits, 1u);
}

TEST(TableApplyBatchTest, LargeBatchMatchesPerRowInserts) {
  // The sorted-run/bulk-upsert fast path must produce the same index
  // contents as per-row insertion.
  Table batched = MakeKvTable();
  Table perrow = MakeKvTable();
  WriteBatch batch;
  for (int64_t k = 0; k < 2000; ++k) {
    Row row{Datum((k * 7919) % 65536), Datum("v" + std::to_string(k))};
    batch.Insert(row);
    ASSERT_TRUE(perrow.Insert(row).ok());
  }
  ASSERT_TRUE(batched.ApplyBatch(batch).ok());
  EXPECT_EQ(batched.RowCount(), perrow.RowCount());
  std::vector<int64_t> a, b;
  ASSERT_TRUE(batched.ScanIndex("pk", [&](const Rid&, const Row& row) {
                 a.push_back(row[0].AsInt());
                 return true;
               }).ok());
  ASSERT_TRUE(perrow.ScanIndex("pk", [&](const Rid&, const Row& row) {
                 b.push_back(row[0].AsInt());
                 return true;
               }).ok());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Per-op vs batched equivalence (property test)
// ---------------------------------------------------------------------------

struct WorkloadSession {
  std::unique_ptr<relstore::Database> prov_db;
  std::unique_ptr<provenance::ProvBackend> backend;
  std::unique_ptr<wrap::TreeTargetDb> target;
  std::unique_ptr<wrap::TreeSourceDb> source;
  std::unique_ptr<Editor> editor;
};

std::unique_ptr<WorkloadSession> MakeWorkloadSession(Strategy strategy,
                                                     uint64_t seed) {
  auto s = std::make_unique<WorkloadSession>();
  s->prov_db = std::make_unique<relstore::Database>("provdb");
  s->backend = std::make_unique<provenance::ProvBackend>(s->prov_db.get());
  s->target = std::make_unique<wrap::TreeTargetDb>(
      "T", workload::GenMimiLike(120, seed * 31 + 1));
  s->source = std::make_unique<wrap::TreeSourceDb>(
      "S1", workload::GenOrganelleLike(240, seed * 31 + 2));
  EditorOptions opts;
  opts.strategy = strategy;
  opts.enable_archive = false;  // group commit requires no archive
  auto editor = Editor::Create(s->target.get(), s->backend.get(), opts);
  EXPECT_TRUE(editor.ok());
  s->editor = std::move(editor).value();
  EXPECT_TRUE(s->editor->MountSource(s->source.get()).ok());
  return s;
}

/// Generates a random script by driving session A per-op; returns the
/// applied updates so the identical twin session can replay them batched.
update::Script DriveRandomPerOp(WorkloadSession* a, uint64_t seed,
                                size_t steps) {
  workload::GenOptions gen_opts;
  gen_opts.seed = seed;
  workload::UpdateGenerator gen(&a->editor->universe(), gen_opts);
  update::Script script;
  for (size_t i = 0; i < steps; ++i) {
    bool skipped = false;
    auto u = gen.Next(&skipped);
    if (!u.has_value()) {
      if (skipped) continue;
      break;
    }
    if (!a->editor->ApplyUpdate(*u).ok()) continue;
    update::ApplyEffect effect;
    if (u->kind == update::OpKind::kInsert) {
      effect.inserted.push_back(u->AffectedPath());
    } else if (u->kind == update::OpKind::kCopy) {
      const tree::Tree* pasted = a->editor->universe().Find(u->target);
      if (pasted != nullptr) {
        pasted->Visit([&](const tree::Path& rel, const tree::Tree&) {
          effect.copied.emplace_back(u->target.Concat(rel),
                                     u->source.Concat(rel));
        });
      }
    }
    gen.OnApplied(*u, effect);
    script.push_back(*u);
  }
  return script;
}

TEST(WriteBatchEquivalenceTest, PerOpAndBatchedPathsAgreeAcrossStrategies) {
  constexpr Strategy kStrategies[] = {
      Strategy::kNaive, Strategy::kHierarchical, Strategy::kTransactional,
      Strategy::kHierarchicalTransactional};
  for (Strategy strategy : kStrategies) {
    for (uint64_t seed : {uint64_t{3}, uint64_t{17}}) {
      SCOPED_TRACE(std::string("strategy=") +
                   provenance::StrategyShortName(strategy) +
                   " seed=" + std::to_string(seed));
      auto a = MakeWorkloadSession(strategy, seed);
      auto b = MakeWorkloadSession(strategy, seed);

      update::Script script = DriveRandomPerOp(a.get(), seed, 200);
      ASSERT_GT(script.size(), 20u);
      ASSERT_TRUE(a->editor->Commit().ok());
      relstore::CostSnapshot a_prov = a->prov_db->cost().Snap();
      relstore::CostSnapshot a_tgt = a->target->cost().Snap();

      size_t applied = 0;
      ASSERT_TRUE(b->editor->ApplyScript(script, &applied).ok());
      EXPECT_EQ(applied, script.size());
      ASSERT_TRUE(b->editor->Commit().ok());
      relstore::CostSnapshot b_prov = b->prov_db->cost().Snap();
      relstore::CostSnapshot b_tgt = b->target->cost().Snap();

      // Identical universe trees, native target contents, and tids.
      EXPECT_TRUE(a->editor->universe().Equals(b->editor->universe()));
      EXPECT_TRUE(a->target->content().Equals(b->target->content()));
      EXPECT_EQ(a->editor->store()->LastCommittedTid(),
                b->editor->store()->LastCommittedTid());

      // Identical provenance tables, row for row.
      auto a_recs = a->backend->GetAll();
      auto b_recs = b->backend->GetAll();
      ASSERT_TRUE(a_recs.ok());
      ASSERT_TRUE(b_recs.ok());
      EXPECT_EQ(a_recs.value(), b_recs.value());

      // Group commit can only reduce write round trips.
      EXPECT_LE(b_prov.write_calls, a_prov.write_calls);
      EXPECT_LE(b_tgt.write_calls, a_tgt.write_calls);
      // The batched path flushes per script/commit, not per op.
      EXPECT_LE(b_prov.write_calls, 1u);
      EXPECT_LE(b_tgt.write_calls, 1u);
      // Same rows move either way.
      EXPECT_EQ(b_prov.write_rows, a_prov.write_rows);
    }
  }
}

// ---------------------------------------------------------------------------
// O(1)-flush acceptance criteria (CostModel write counters)
// ---------------------------------------------------------------------------

TEST(WriteBatchRoundTripTest, CommittedHtTransactionFlushesInOneCallEach) {
  auto s = testutil::MakeFigureSession(
      Strategy::kHierarchicalTransactional, 1, /*enable_archive=*/false);
  ASSERT_NE(s, nullptr);
  relstore::CostSnapshot prov0 = s->prov_db->cost().Snap();
  relstore::CostSnapshot tgt0 = s->target->cost().Snap();
  ASSERT_TRUE(s->editor->ApplyScriptText(testutil::Figure3ScriptText()).ok());
  ASSERT_TRUE(s->editor->Commit().ok());
  relstore::CostSnapshot prov1 = s->prov_db->cost().Snap();
  relstore::CostSnapshot tgt1 = s->target->cost().Snap();
  // The k-op transaction reaches the provenance backend in exactly one
  // WriteRecords and the target in exactly one ApplyBatch.
  EXPECT_EQ(prov1.write_calls - prov0.write_calls, 1u);
  EXPECT_EQ(tgt1.write_calls - tgt0.write_calls, 1u);
  EXPECT_GT(s->editor->store()->RecordCount(), 0u);
}

TEST(WriteBatchRoundTripTest, PerOpScriptGroupCommitsInOneCallEach) {
  for (Strategy strategy : {Strategy::kNaive, Strategy::kHierarchical}) {
    SCOPED_TRACE(provenance::StrategyShortName(strategy));
    auto s = testutil::MakeFigureSession(strategy, 1,
                                         /*enable_archive=*/false);
    ASSERT_NE(s, nullptr);
    relstore::CostSnapshot prov0 = s->prov_db->cost().Snap();
    relstore::CostSnapshot tgt0 = s->target->cost().Snap();
    ASSERT_TRUE(
        s->editor->ApplyScriptText(testutil::Figure3ScriptText()).ok());
    relstore::CostSnapshot prov1 = s->prov_db->cost().Snap();
    relstore::CostSnapshot tgt1 = s->target->cost().Snap();
    // One group-commit WriteRecords and one target ApplyBatch for the
    // whole 10-op script, even though each op kept its own tid.
    EXPECT_EQ(prov1.write_calls - prov0.write_calls, 1u);
    EXPECT_EQ(tgt1.write_calls - tgt0.write_calls, 1u);
    EXPECT_EQ(s->editor->store()->LastCommittedTid(), 10);
  }
}

// ---------------------------------------------------------------------------
// Abort-mid-batch atomicity
// ---------------------------------------------------------------------------

TEST(WriteBatchAbortTest, AbortDiscardsStagedBatchAtomically) {
  for (Strategy strategy : {Strategy::kTransactional,
                            Strategy::kHierarchicalTransactional}) {
    SCOPED_TRACE(provenance::StrategyShortName(strategy));
    auto s = testutil::MakeFigureSession(strategy, 1,
                                         /*enable_archive=*/false);
    ASSERT_NE(s, nullptr);
    // A first committed transaction, so the abort must preserve history.
    ASSERT_TRUE(
        s->editor->Insert(tree::Path::MustParse("T"), "keep").ok());
    ASSERT_TRUE(s->editor->Commit().ok());

    std::string universe_before = s->editor->universe().ToString();
    std::string target_before = s->target->content().ToString();
    auto recs_before = s->backend->GetAll();
    ASSERT_TRUE(recs_before.ok());
    relstore::CostSnapshot prov_before = s->prov_db->cost().Snap();
    relstore::CostSnapshot tgt_before = s->target->cost().Snap();

    // Stage a multi-op transaction, then abort it mid-batch.
    ASSERT_TRUE(
        s->editor->Insert(tree::Path::MustParse("T"), "doomed").ok());
    ASSERT_TRUE(s->editor
                    ->CopyPaste(tree::Path::MustParse("S1/a1"),
                                tree::Path::MustParse("T/doomed2"))
                    .ok());
    ASSERT_TRUE(s->editor->Delete(tree::Path::MustParse("T"), "c1").ok());
    EXPECT_GT(s->editor->PendingOps(), 0u);
    ASSERT_TRUE(s->editor->Abort().ok());

    // Nothing of the aborted transaction is observable anywhere: not in
    // the universe, not in the native target, not in the provenance
    // store, and no write round trip was charged.
    EXPECT_EQ(s->editor->universe().ToString(), universe_before);
    EXPECT_EQ(s->target->content().ToString(), target_before);
    auto recs_after = s->backend->GetAll();
    ASSERT_TRUE(recs_after.ok());
    EXPECT_EQ(recs_after.value(), recs_before.value());
    EXPECT_EQ(s->prov_db->cost().Snap().write_calls,
              prov_before.write_calls);
    EXPECT_EQ(s->target->cost().Snap().write_calls, tgt_before.write_calls);
    EXPECT_EQ(s->editor->PendingOps(), 0u);

    // The session still works after the abort.
    ASSERT_TRUE(
        s->editor->Insert(tree::Path::MustParse("T"), "after").ok());
    ASSERT_TRUE(s->editor->Commit().ok());
  }
}

}  // namespace
}  // namespace cpdb
