#include "archive/archive.h"

#include <gtest/gtest.h>

#include "tree/diff.h"
#include "tree/serialize.h"
#include "update/semantics.h"

namespace cpdb::archive {
namespace {

tree::Tree T(const std::string& lit) {
  auto r = tree::ParseTree(lit);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

tree::Path P(const std::string& s) { return tree::Path::MustParse(s); }

/// Applies a script to a working tree and records it.
Status Step(VersionArchive* arch, tree::Tree* work, int64_t tid,
            update::Script script) {
  CPDB_RETURN_IF_ERROR(update::ApplySequence(work, script));
  return arch->Record(tid, std::move(script), *work);
}

TEST(ArchiveTest, ReconstructsAllVersions) {
  tree::Tree work = T("{T: {a: 1}}");
  VersionArchive arch(0, work.Clone());
  ASSERT_TRUE(Step(&arch, &work, 1,
                   {update::Update::Insert(P("T"), "b",
                                           tree::Value(int64_t{2}))})
                  .ok());
  ASSERT_TRUE(
      Step(&arch, &work, 2, {update::Update::Delete(P("T"), "a")}).ok());
  ASSERT_TRUE(Step(&arch, &work, 3,
                   {update::Update::Insert(P("T"), "c"),
                    update::Update::Copy(P("T/b"), P("T/c/d"))})
                  .ok());

  auto v0 = arch.GetVersion(0);
  ASSERT_TRUE(v0.ok());
  EXPECT_TRUE(v0->Equals(T("{T: {a: 1}}")));
  auto v1 = arch.GetVersion(1);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->Equals(T("{T: {a: 1, b: 2}}")));
  auto v2 = arch.GetVersion(2);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(v2->Equals(T("{T: {b: 2}}")));
  auto v3 = arch.GetVersion(3);
  ASSERT_TRUE(v3.ok());
  EXPECT_TRUE(v3->Equals(work));
  EXPECT_FALSE(arch.GetVersion(4).ok());
  EXPECT_FALSE(arch.GetVersion(-1).ok());
}

TEST(ArchiveTest, NonConsecutiveVersionsRejected) {
  VersionArchive arch(0, tree::Tree());
  tree::Tree work;
  EXPECT_TRUE(arch.Record(2, {}, work).IsInvalidArgument());
}

TEST(ArchiveTest, CheckpointCadence) {
  VersionArchive::Options opts;
  opts.checkpoint_every = 4;
  tree::Tree work = T("{T: {}}");
  VersionArchive arch(0, work.Clone(), opts);
  for (int64_t tid = 1; tid <= 10; ++tid) {
    ASSERT_TRUE(Step(&arch, &work, tid,
                     {update::Update::Insert(
                         P("T"), "n" + std::to_string(tid))})
                    .ok());
  }
  // Checkpoints at 0, 4, 8 -> 3 snapshots for 11 versions.
  EXPECT_EQ(arch.CheckpointCount(), 3u);
  // Reconstruction across a checkpoint boundary.
  auto v7 = arch.GetVersion(7);
  ASSERT_TRUE(v7.ok());
  EXPECT_TRUE(v7->Contains(P("T/n7")));
  EXPECT_FALSE(v7->Contains(P("T/n8")));
}

TEST(ArchiveTest, GetScript) {
  tree::Tree work = T("{T: {}}");
  VersionArchive arch(0, work.Clone());
  update::Script script = {update::Update::Insert(P("T"), "x")};
  ASSERT_TRUE(update::ApplySequence(&work, script).ok());
  ASSERT_TRUE(arch.Record(1, script, work).ok());
  auto got = arch.GetScript(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, script);
  EXPECT_TRUE(arch.GetScript(2).status().IsNotFound());
}

TEST(ArchiveTest, VersionFnMemoKeepsTwoVersionsLive) {
  tree::Tree work = T("{T: {}}");
  VersionArchive arch(0, work.Clone());
  for (int64_t tid = 1; tid <= 3; ++tid) {
    ASSERT_TRUE(Step(&arch, &work, tid,
                     {update::Update::Insert(
                         P("T"), "n" + std::to_string(tid))})
                    .ok());
  }
  auto fn = arch.MakeVersionFn();
  const tree::Tree* v2 = fn(2);
  const tree::Tree* v1 = fn(1);
  ASSERT_NE(v2, nullptr);
  ASSERT_NE(v1, nullptr);
  // Both must stay valid simultaneously (pre/post of one transaction).
  EXPECT_TRUE(v2->Contains(P("T/n2")));
  EXPECT_FALSE(v1->Contains(P("T/n2")));
  EXPECT_EQ(fn(99), nullptr);
}

TEST(ArchiveTest, ArchiveAloneCannotDistinguishCopyFromInsert) {
  // The Section 5 argument: a diff between versions shows *what* changed
  // but not *how* — a copy and a fresh insert with equal content yield
  // identical diffs, which is why provenance is not subsumed by
  // archiving/version control.
  tree::Tree work = T("{S: {a: 5}, T: {}}");
  VersionArchive arch(0, work.Clone());
  ASSERT_TRUE(
      Step(&arch, &work, 1, {update::Update::Copy(P("S/a"), P("T/b"))}).ok());

  tree::Tree work2 = T("{S: {a: 5}, T: {}}");
  VersionArchive arch2(0, work2.Clone());
  ASSERT_TRUE(Step(&arch2, &work2, 1,
                   {update::Update::Insert(P("T"), "b",
                                           tree::Value(int64_t{5}))})
                  .ok());

  auto a1 = arch.GetVersion(1);
  auto b1 = arch2.GetVersion(1);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(b1.ok());
  auto diff_a = tree::DiffTrees(*arch.GetVersion(0), *a1);
  auto diff_b = tree::DiffTrees(*arch2.GetVersion(0), *b1);
  EXPECT_EQ(diff_a, diff_b);  // indistinguishable by diff
  // ...but distinguishable by the scripts provenance would record.
  EXPECT_NE(**arch.GetScript(1), **arch2.GetScript(1));
}

}  // namespace
}  // namespace cpdb::archive
