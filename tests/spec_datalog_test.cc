// Cross-checks the optimized provenance machinery against the datalog
// specification of the paper's views (query/spec.h): the datalog text IS
// the ground truth.

#include <gtest/gtest.h>

#include "test_util.h"

namespace cpdb {
namespace {

using provenance::Strategy;
using tree::Path;

struct SpecFixture {
  std::unique_ptr<testutil::Session> session;
  datalog::Evaluator eval;
};

std::unique_ptr<SpecFixture> BuildFigure3Spec(Strategy strategy) {
  auto fx = std::make_unique<SpecFixture>();
  fx->session = testutil::MakeFigureSession(strategy);
  EXPECT_NE(fx->session, nullptr);
  Status st =
      fx->session->editor->ApplyScriptText(testutil::Figure3ScriptText());
  EXPECT_TRUE(st.ok()) << st;
  auto records = fx->session->editor->store()->backend()->GetAll();
  EXPECT_TRUE(records.ok());
  auto* store = fx->session->editor->store();
  auto versions = fx->session->editor->archive()->MakeVersionFn();
  auto eval = query::BuildSpec(records.value(), store->FirstTid(),
                               store->LastCommittedTid(), versions);
  EXPECT_TRUE(eval.ok()) << eval.status();
  fx->eval = std::move(eval).value();
  EXPECT_TRUE(fx->eval.Evaluate().ok());
  return fx;
}

std::set<int64_t> TidSet(const std::set<datalog::Tuple>& rel,
                         const std::string& loc) {
  std::set<int64_t> out;
  for (const auto& t : rel) {
    if (t.size() == 2 && t[0] == loc) out.insert(std::stoll(t[1]));
  }
  return out;
}

TEST(SpecTest, DatalogProvExpansionMatchesNaiveStore) {
  // Expanding the hierarchical store's records through the datalog rules
  // yields the naive store's table.
  auto hier = BuildFigure3Spec(Strategy::kHierarchical);
  auto naive_session = testutil::MakeFigureSession(Strategy::kNaive);
  ASSERT_TRUE(naive_session->editor
                  ->ApplyScriptText(testutil::Figure3ScriptText())
                  .ok());
  auto naive = naive_session->editor->store()->backend()->GetAll();
  ASSERT_TRUE(naive.ok());

  const auto& prov = hier->eval.Get("Prov");
  ASSERT_EQ(prov.size(), naive->size());
  for (const auto& r : *naive) {
    datalog::Tuple t = {std::to_string(r.tid),
                        std::string(1, provenance::ProvOpChar(r.op)),
                        r.loc.ToString(),
                        r.op == provenance::ProvOp::kCopy
                            ? r.src.ToString()
                            : "⊥"};
    EXPECT_TRUE(prov.count(t) > 0) << r.ToString();
  }
}

TEST(SpecTest, SrcQueryMatchesEngine) {
  for (Strategy strat : {Strategy::kNaive, Strategy::kHierarchical}) {
    auto fx = BuildFigure3Spec(strat);
    query::QueryEngine* q = fx->session->editor->query();
    const tree::Tree* target = fx->session->editor->TargetView();
    target->Visit([&](const Path& rel, const tree::Tree&) {
      if (rel.IsRoot()) return;
      Path p = Path({std::string("T")}).Concat(rel);
      auto engine_src = q->GetSrc(p);
      ASSERT_TRUE(engine_src.ok());
      std::set<int64_t> spec_src =
          TidSet(fx->eval.Get("SrcQ"), p.ToString());
      if (engine_src->has_value()) {
        EXPECT_EQ(spec_src, std::set<int64_t>{**engine_src})
            << p.ToString();
      } else {
        EXPECT_TRUE(spec_src.empty()) << p.ToString();
      }
    });
  }
}

TEST(SpecTest, HistQueryMatchesEngine) {
  for (Strategy strat : {Strategy::kNaive, Strategy::kHierarchical}) {
    auto fx = BuildFigure3Spec(strat);
    query::QueryEngine* q = fx->session->editor->query();
    const tree::Tree* target = fx->session->editor->TargetView();
    target->Visit([&](const Path& rel, const tree::Tree&) {
      if (rel.IsRoot()) return;
      Path p = Path({std::string("T")}).Concat(rel);
      auto engine_hist = q->GetHist(p);
      ASSERT_TRUE(engine_hist.ok());
      std::set<int64_t> engine_set(engine_hist->begin(),
                                   engine_hist->end());
      std::set<int64_t> spec_set =
          TidSet(fx->eval.Get("HistQ"), p.ToString());
      EXPECT_EQ(engine_set, spec_set) << p.ToString();
    });
  }
}

TEST(SpecTest, TraceIsReflexiveAndTransitive) {
  auto fx = BuildFigure3Spec(Strategy::kNaive);
  const auto& trace = fx->eval.Get("Trace");
  // Reflexivity at tnow for a surviving node.
  EXPECT_TRUE(fx->eval.Holds("Trace", {"T/c3", "130", "T/c3", "130"}));
  // The copy chain steps to the source at the prior version.
  EXPECT_TRUE(fx->eval.Holds("Trace", {"T/c3", "130", "S1/a3", "126"}));
  EXPECT_FALSE(trace.empty());
}

TEST(SpecTest, ModQuerySpecIsSubsetOfEngineAnswer) {
  // The spec's ModQ follows Trace (only data surviving to tnow), while
  // the engine's record-based GetMod also reports transactions whose
  // effects were later overwritten — a documented superset.
  auto fx = BuildFigure3Spec(Strategy::kNaive);
  query::QueryEngine* q = fx->session->editor->query();
  for (const char* loc : {"T/c2", "T/c3", "T/c4"}) {
    auto engine_mod = q->GetMod(Path::MustParse(loc));
    ASSERT_TRUE(engine_mod.ok());
    std::set<int64_t> engine_set(engine_mod->begin(), engine_mod->end());
    std::set<int64_t> spec_set = TidSet(fx->eval.Get("ModQ"), loc);
    for (int64_t u : spec_set) {
      EXPECT_TRUE(engine_set.count(u) > 0)
          << loc << " missing spec tid " << u;
    }
  }
}

}  // namespace
}  // namespace cpdb
