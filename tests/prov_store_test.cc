// Strategy-level unit tests driving the ProvStore implementations
// directly with hand-built effects — edge cases of the provlist
// (net-effect) semantics and of the hierarchical inferability checks.

#include <gtest/gtest.h>

#include "provenance/hier_store.h"
#include "provenance/naive_store.h"
#include "provenance/txn_store.h"
#include "relstore/database.h"

namespace cpdb::provenance {
namespace {

using tree::Path;
using update::ApplyEffect;

Path P(const std::string& s) { return Path::MustParse(s); }

ApplyEffect InsertEffect(const std::string& p) {
  ApplyEffect e;
  e.inserted.push_back(P(p));
  return e;
}

ApplyEffect DeleteEffect(std::vector<std::string> paths) {
  ApplyEffect e;
  for (const auto& p : paths) e.deleted.push_back(P(p));
  return e;
}

ApplyEffect CopyEffect(std::vector<std::pair<std::string, std::string>> c,
                       std::vector<std::string> overwritten = {}) {
  ApplyEffect e;
  for (const auto& [loc, src] : c) e.copied.emplace_back(P(loc), P(src));
  for (const auto& o : overwritten) e.overwritten.push_back(P(o));
  e.overwrote = !e.overwritten.empty();
  return e;
}

struct Fixture {
  relstore::Database db{"provdb"};
  ProvBackend backend{&db};
};

TEST(TxnStoreTest, InsertThenDeleteCancels) {
  Fixture fx;
  TxnStore store(&fx.backend, TxnStoreOptions{});
  ASSERT_TRUE(store.TrackInsert(InsertEffect("T/a")).ok());
  EXPECT_EQ(store.PendingCount(), 1u);
  ASSERT_TRUE(store.TrackDelete(DeleteEffect({"T/a"})).ok());
  EXPECT_EQ(store.PendingCount(), 0u);
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(store.RecordCount(), 0u);
}

TEST(TxnStoreTest, DeleteThenReinsertBecomesInsert) {
  // Content at the location was replaced: the {Tid, Loc} key admits one
  // record, and the net effect is recorded as I.
  Fixture fx;
  TxnStore store(&fx.backend, TxnStoreOptions{});
  ASSERT_TRUE(store.TrackDelete(DeleteEffect({"T/a"})).ok());
  ASSERT_TRUE(store.TrackInsert(InsertEffect("T/a")).ok());
  ASSERT_TRUE(store.Commit().ok());
  auto records = store.backend()->GetAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].op, ProvOp::kInsert);
  EXPECT_EQ((*records)[0].loc, P("T/a"));
}

TEST(TxnStoreTest, DeleteOfPreexistingChildrenSurvivesReinsertOfRoot) {
  Fixture fx;
  TxnStore store(&fx.backend, TxnStoreOptions{});
  // Delete a pre-existing subtree {a, a/x}; re-insert only the root.
  ASSERT_TRUE(store.TrackDelete(DeleteEffect({"T/a", "T/a/x"})).ok());
  ASSERT_TRUE(store.TrackInsert(InsertEffect("T/a")).ok());
  ASSERT_TRUE(store.Commit().ok());
  auto records = store.backend()->GetAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  // a: net replaced (I); a/x: net deleted (D).
  EXPECT_EQ((*records)[0].loc, P("T/a"));
  EXPECT_EQ((*records)[0].op, ProvOp::kInsert);
  EXPECT_EQ((*records)[1].loc, P("T/a/x"));
  EXPECT_EQ((*records)[1].op, ProvOp::kDelete);
}

TEST(TxnStoreTest, CopyOverwriteDropsOverwrittenLinks) {
  Fixture fx;
  TxnStore store(&fx.backend, TxnStoreOptions{});
  ASSERT_TRUE(store
                  .TrackCopy(CopyEffect(
                      {{"T/e", "S1/a"}, {"T/e/x", "S1/a/x"}}))
                  .ok());
  EXPECT_EQ(store.PendingCount(), 2u);
  // Overwrite with a copy from S2 whose shape differs.
  ASSERT_TRUE(store
                  .TrackCopy(CopyEffect({{"T/e", "S2/b"},
                                         {"T/e/y", "S2/b/y"}},
                                        {"T/e", "T/e/x"}))
                  .ok());
  ASSERT_TRUE(store.Commit().ok());
  auto records = store.backend()->GetAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  for (const auto& r : *records) {
    EXPECT_EQ(r.src.At(0), "S2") << r.ToString();
  }
}

TEST(TxnStoreTest, CopyDataThenDeleteWithinTxnLeavesNothing) {
  Fixture fx;
  TxnStore store(&fx.backend, TxnStoreOptions{});
  ASSERT_TRUE(store
                  .TrackCopy(CopyEffect(
                      {{"T/e", "S1/a"}, {"T/e/x", "S1/a/x"}}))
                  .ok());
  ASSERT_TRUE(store.TrackDelete(DeleteEffect({"T/e", "T/e/x"})).ok());
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(store.RecordCount(), 0u);
}

TEST(TxnStoreTest, EmptyCommitAdvancesTidWithoutRoundTrip) {
  Fixture fx;
  TxnStore store(&fx.backend, TxnStoreOptions{});
  size_t calls_before = fx.db.cost().Calls();
  ASSERT_TRUE(store.Commit().ok());
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(fx.db.cost().Calls(), calls_before);
  EXPECT_EQ(store.LastCommittedTid(), 2);
}

TEST(TxnStoreTest, AbortDiscardsPending) {
  Fixture fx;
  TxnStore store(&fx.backend, TxnStoreOptions{});
  ASSERT_TRUE(store.TrackInsert(InsertEffect("T/a")).ok());
  EXPECT_TRUE(store.HasPending());
  store.AbortPending();
  EXPECT_FALSE(store.HasPending());
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(store.RecordCount(), 0u);
}

TEST(HtStoreTest, InsertUnderSameTxnInsertIsInferable) {
  Fixture fx;
  TxnStoreOptions opts;
  opts.hierarchical = true;
  TxnStore store(&fx.backend, opts);
  ASSERT_TRUE(store.TrackInsert(InsertEffect("T/a")).ok());
  ASSERT_TRUE(store.TrackInsert(InsertEffect("T/a/b")).ok());
  // b is inferable from a's insert; only one record pending.
  EXPECT_EQ(store.PendingCount(), 1u);
  // But an insert under a *copied* node is NOT inferable (Fig 5(d)'s
  // "121 I T/c4/y").
  ASSERT_TRUE(store
                  .TrackCopy(CopyEffect({{"T/c", "S1/a"}}))
                  .ok());
  ASSERT_TRUE(store.TrackInsert(InsertEffect("T/c/y")).ok());
  EXPECT_EQ(store.PendingCount(), 3u);
}

TEST(HtStoreTest, HierarchicalDeleteStoresOnlyRoot) {
  Fixture fx;
  TxnStoreOptions opts;
  opts.hierarchical = true;
  TxnStore store(&fx.backend, opts);
  ASSERT_TRUE(
      store.TrackDelete(DeleteEffect({"T/a", "T/a/x", "T/a/y"})).ok());
  ASSERT_TRUE(store.Commit().ok());
  auto records = store.backend()->GetAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].op, ProvOp::kDelete);
  EXPECT_EQ((*records)[0].loc, P("T/a"));
}

TEST(NaiveStoreTest, PerOpTransactionNumbers) {
  Fixture fx;
  NaiveStore store(&fx.backend, /*first_tid=*/121);
  ASSERT_TRUE(store.TrackInsert(InsertEffect("T/a")).ok());
  ASSERT_TRUE(store.TrackDelete(DeleteEffect({"T/b", "T/b/x"})).ok());
  auto records = store.backend()->GetAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].tid, 121);
  EXPECT_EQ((*records)[1].tid, 122);  // both delete rows share tid 122
  EXPECT_EQ((*records)[2].tid, 122);
  EXPECT_EQ(store.LastCommittedTid(), 122);
}

TEST(HierStoreTest, InsertProbeCostsARoundTrip) {
  Fixture fx;
  HierStore hier(&fx.backend);
  size_t calls0 = fx.db.cost().Calls();
  ASSERT_TRUE(hier.TrackInsert(InsertEffect("T/a")).ok());
  size_t insert_calls = fx.db.cost().Calls() - calls0;

  relstore::Database db2("provdb2");
  ProvBackend backend2(&db2);
  NaiveStore naive(&backend2);
  size_t calls1 = db2.cost().Calls();
  ASSERT_TRUE(naive.TrackInsert(InsertEffect("T/a")).ok());
  size_t naive_calls = db2.cost().Calls() - calls1;

  // The hierarchical insert issues the existence probe + the write; the
  // naive insert only the write (Figure 10's H-add penalty).
  EXPECT_EQ(insert_calls, naive_calls + 1);
}

TEST(BackendTest, TidLocKeyEnforced) {
  Fixture fx;
  ASSERT_TRUE(
      fx.backend.WriteRecords({ProvRecord::Insert(1, P("T/a"))}).ok());
  // Same {Tid, Loc} again: the unique index refuses.
  EXPECT_FALSE(
      fx.backend.WriteRecords({ProvRecord::Delete(1, P("T/a"))}).ok());
  // Different tid: fine.
  EXPECT_TRUE(
      fx.backend.WriteRecords({ProvRecord::Delete(2, P("T/a"))}).ok());
}

TEST(BackendTest, GetUnderIsPathAware) {
  Fixture fx;
  ASSERT_TRUE(fx.backend
                  .WriteRecords({ProvRecord::Insert(1, P("T/c1")),
                                 ProvRecord::Insert(2, P("T/c1/x")),
                                 ProvRecord::Insert(3, P("T/c10")),
                                 ProvRecord::Insert(4, P("T/c2"))})
                  .ok());
  auto under = fx.backend.GetUnder(P("T/c1"));
  ASSERT_TRUE(under.ok());
  ASSERT_EQ(under->size(), 2u);  // c1 and c1/x, NOT c10
  EXPECT_EQ((*under)[0].loc, P("T/c1"));
  EXPECT_EQ((*under)[1].loc, P("T/c1/x"));
}

TEST(BackendTest, GetAtLocOrAncestorsWalksUp) {
  Fixture fx;
  ASSERT_TRUE(fx.backend
                  .WriteRecords({ProvRecord::Copy(1, P("T/a"), P("S/x")),
                                 ProvRecord::Insert(2, P("T/a/b/c")),
                                 ProvRecord::Insert(3, P("T/zz"))})
                  .ok());
  size_t calls0 = fx.db.cost().Calls();
  auto recs = fx.backend.GetAtLocOrAncestors(P("T/a/b/c"));
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(fx.db.cost().Calls() - calls0, 1u);  // ONE client call
  ASSERT_EQ(recs->size(), 2u);  // T/a and T/a/b/c, not T/zz
}

// Regression for the documented ordering contract: GetAll yields
// (tid, loc) order, and the streaming cursors guarantee the same orders
// as their one-shot shims.
TEST(BackendTest, GetAllIsTidLocOrderedAndCursorsAgree) {
  Fixture fx;
  // Written deliberately out of (tid, loc) order.
  ASSERT_TRUE(fx.backend
                  .WriteRecords({ProvRecord::Insert(3, P("T/b")),
                                 ProvRecord::Insert(1, P("T/c")),
                                 ProvRecord::Insert(2, P("T/a/x")),
                                 ProvRecord::Insert(1, P("T/a")),
                                 ProvRecord::Insert(2, P("T/a")),
                                 ProvRecord::Insert(3, P("T/a/x"))})
                  .ok());
  auto all = fx.backend.GetAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 6u);
  for (size_t i = 0; i + 1 < all->size(); ++i) {
    const ProvRecord& a = (*all)[i];
    const ProvRecord& b = (*all)[i + 1];
    // Loc ordering is the index's: the slash-joined string rendering.
    EXPECT_TRUE(a.tid < b.tid ||
                (a.tid == b.tid && a.loc.ToString() < b.loc.ToString()))
        << a.ToString() << " !< " << b.ToString();
  }
  // ScanAll streams the identical sequence.
  std::vector<ProvRecord> streamed;
  ProvCursor cur = fx.backend.ScanAll();
  ProvRecord r;
  while (cur.Next(&r)) streamed.push_back(r);
  ASSERT_TRUE(cur.status().ok());
  EXPECT_EQ(streamed, *all);
  // ScanUnder is (Loc, Tid)-ordered.
  std::vector<std::pair<std::string, int64_t>> under;
  ProvCursor uc = fx.backend.ScanUnder(P("T/a"));
  while (uc.Next(&r)) under.emplace_back(r.loc.ToString(), r.tid);
  EXPECT_EQ(under, (std::vector<std::pair<std::string, int64_t>>{
                       {"T/a", 1}, {"T/a", 2}, {"T/a/x", 2}, {"T/a/x", 3}}));
}

TEST(BackendTest, CursorChargesOneRoundTripPerBatchFetched) {
  Fixture fx;
  std::vector<ProvRecord> recs;
  for (int i = 0; i < 10; ++i) {
    recs.push_back(ProvRecord::Insert(1, P("T/n" + std::to_string(i))));
  }
  ASSERT_TRUE(fx.backend.WriteRecords(recs).ok());

  // Drained in one big fetch: one round trip, like the old one-shot read.
  size_t calls0 = fx.db.cost().Calls();
  ProvCursor one = fx.backend.ScanAll();
  std::vector<ProvRecord> batch;
  EXPECT_EQ(one.Next(&batch, ProvCursor::kNoLimit), 10u);
  EXPECT_EQ(fx.db.cost().Calls() - calls0, 1u);
  EXPECT_EQ(one.RoundTrips(), 1u);

  // Streamed in batches of 4: 3 fetches (4 + 4 + 2).
  calls0 = fx.db.cost().Calls();
  ProvCursor many = fx.backend.ScanAll();
  size_t total = 0;
  while (many.Next(&batch, 4) > 0) total += batch.size();
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(fx.db.cost().Calls() - calls0, 3u);
  EXPECT_EQ(many.RoundTrips(), 3u);
}

TEST(BackendTest, LookupManyResolvesBatchInOneRoundTrip) {
  Fixture fx;
  ASSERT_TRUE(fx.backend
                  .WriteRecords({ProvRecord::Insert(1, P("T/a")),
                                 ProvRecord::Copy(1, P("T/b"), P("S/q")),
                                 ProvRecord::Insert(2, P("T/a"))})
                  .ok());
  size_t calls0 = fx.db.cost().Calls();
  auto got = fx.backend.LookupMany(
      1, {P("T/a"), P("T/b"), P("T/missing")});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(fx.db.cost().Calls() - calls0, 1u);
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].loc, P("T/a"));
  EXPECT_EQ((*got)[1].loc, P("T/b"));
  // An empty batch is an empty statement: nothing sent, nothing charged.
  calls0 = fx.db.cost().Calls();
  auto none = fx.backend.LookupMany(1, {});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_EQ(fx.db.cost().Calls() - calls0, 0u);
}

TEST(BackendTest, AncestorScanExcludesSelfWhenAsked) {
  Fixture fx;
  ASSERT_TRUE(fx.backend
                  .WriteRecords({ProvRecord::Copy(1, P("T/a"), P("S/x")),
                                 ProvRecord::Insert(2, P("T/a/b")),
                                 ProvRecord::Insert(3, P("T/a/b/c"))})
                  .ok());
  std::vector<std::string> locs;
  ProvCursor cur =
      fx.backend.ScanAtLocOrAncestors(P("T/a/b/c"), /*include_self=*/false);
  ProvRecord r;
  while (cur.Next(&r)) locs.push_back(r.loc.ToString());
  // Shallowest first, self excluded.
  EXPECT_EQ(locs, (std::vector<std::string>{"T/a", "T/a/b"}));
}

}  // namespace
}  // namespace cpdb::provenance
