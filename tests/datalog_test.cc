#include "datalog/evaluator.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace cpdb::datalog {
namespace {

Status LoadProgram(Evaluator* eval, const std::string& text) {
  auto rules = ParseProgram(text);
  if (!rules.ok()) return rules.status();
  for (auto& r : rules.value()) {
    CPDB_RETURN_IF_ERROR(eval->AddRule(std::move(r)));
  }
  return Status::OK();
}

TEST(DatalogParserTest, FactsRulesAndComments) {
  auto rules = ParseProgram(R"(
    % base facts
    Edge(a, b).
    Edge("b", "c with spaces").
    Path(X, Y) :- Edge(X, Y).
    Path(X, Z) :- Path(X, Y), Edge(Y, Z).
  )");
  ASSERT_TRUE(rules.ok()) << rules.status();
  ASSERT_EQ(rules->size(), 4u);
  EXPECT_TRUE(rules->at(0).body.empty());
  EXPECT_EQ(rules->at(2).head.pred, "Path");
  EXPECT_TRUE(rules->at(2).head.args[0].is_var);
  EXPECT_FALSE(rules->at(1).head.args[1].is_var);
  EXPECT_EQ(rules->at(1).head.args[1].text, "c with spaces");
}

TEST(DatalogParserTest, RejectsMalformedRules) {
  EXPECT_FALSE(ParseRule("Path(X, Y :- Edge(X, Y).").ok());
  EXPECT_FALSE(ParseRule("Path(X, Y)").ok());          // missing '.'
  EXPECT_FALSE(ParseRule("!Neg(X) :- Edge(X, X).").ok());  // negated head
}

TEST(DatalogTest, TransitiveClosure) {
  Evaluator eval;
  ASSERT_TRUE(LoadProgram(&eval, R"(
    Edge(a, b). Edge(b, c). Edge(c, d).
    Path(X, Y) :- Edge(X, Y).
    Path(X, Z) :- Path(X, Y), Edge(Y, Z).
  )").ok());
  ASSERT_TRUE(eval.Evaluate().ok());
  EXPECT_EQ(eval.Get("Path").size(), 6u);
  EXPECT_TRUE(eval.Holds("Path", {"a", "d"}));
  EXPECT_FALSE(eval.Holds("Path", {"d", "a"}));
}

TEST(DatalogTest, CyclicGraphTerminates) {
  Evaluator eval;
  ASSERT_TRUE(LoadProgram(&eval, R"(
    Edge(a, b). Edge(b, a).
    Path(X, Y) :- Edge(X, Y).
    Path(X, Z) :- Path(X, Y), Path(Y, Z).
  )").ok());
  ASSERT_TRUE(eval.Evaluate().ok());
  // Reflexive pairs appear through the cycle.
  EXPECT_TRUE(eval.Holds("Path", {"a", "a"}));
  EXPECT_EQ(eval.Get("Path").size(), 4u);
}

TEST(DatalogTest, StratifiedNegation) {
  Evaluator eval;
  ASSERT_TRUE(LoadProgram(&eval, R"(
    Node(a). Node(b). Node(c).
    Edge(a, b).
    HasOut(X) :- Edge(X, Y).
    Sink(X) :- Node(X), !HasOut(X).
  )").ok());
  ASSERT_TRUE(eval.Evaluate().ok());
  EXPECT_FALSE(eval.Holds("Sink", {"a"}));
  EXPECT_TRUE(eval.Holds("Sink", {"b"}));
  EXPECT_TRUE(eval.Holds("Sink", {"c"}));
}

TEST(DatalogTest, RejectsNegationInCycle) {
  Evaluator eval;
  ASSERT_TRUE(LoadProgram(&eval, R"(
    P(X) :- Q(X), !P(X).
    Q(a).
  )").ok());
  EXPECT_FALSE(eval.Evaluate().ok());
}

TEST(DatalogTest, RejectsUnsafeRules) {
  Evaluator eval;
  // Head variable Y unbound.
  auto r1 = ParseRule("P(X, Y) :- Q(X).");
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(eval.AddRule(r1.value()).ok());
  // Negated variable unbound.
  auto r2 = ParseRule("P(X) :- Q(X), !R(Z).");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(eval.AddRule(r2.value()).ok());
}

TEST(DatalogTest, ConstantsInRules) {
  Evaluator eval;
  ASSERT_TRUE(LoadProgram(&eval, R"(
    Op(t1, "C"). Op(t2, "I").
    CopyTxn(T) :- Op(T, "C").
  )").ok());
  ASSERT_TRUE(eval.Evaluate().ok());
  EXPECT_TRUE(eval.Holds("CopyTxn", {"t1"}));
  EXPECT_FALSE(eval.Holds("CopyTxn", {"t2"}));
}

TEST(DatalogTest, MultiStratumPipeline) {
  // Three strata: base -> closure -> complement -> projection.
  Evaluator eval;
  ASSERT_TRUE(LoadProgram(&eval, R"(
    Node(a). Node(b). Node(c). Node(d).
    Edge(a, b). Edge(b, c).
    Reach(X, Y) :- Edge(X, Y).
    Reach(X, Z) :- Reach(X, Y), Edge(Y, Z).
    Unreachable(X) :- Node(X), !ReachedFromA(X).
    ReachedFromA(X) :- Reach(a, X).
  )").ok());
  ASSERT_TRUE(eval.Evaluate().ok());
  EXPECT_TRUE(eval.Holds("Unreachable", {"a"}));  // a doesn't reach itself
  EXPECT_FALSE(eval.Holds("Unreachable", {"c"}));
  EXPECT_TRUE(eval.Holds("Unreachable", {"d"}));
}

TEST(DatalogTest, SemiNaiveMatchesNaiveOnChains) {
  // A long chain exercises multiple delta rounds; spot-check the closure
  // count n*(n+1)/2 for a chain of n edges.
  Evaluator eval;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    eval.AddFact("Edge", {"v" + std::to_string(i), "v" + std::to_string(i + 1)});
  }
  ASSERT_TRUE(LoadProgram(&eval, R"(
    Path(X, Y) :- Edge(X, Y).
    Path(X, Z) :- Path(X, Y), Edge(Y, Z).
  )").ok());
  ASSERT_TRUE(eval.Evaluate().ok());
  EXPECT_EQ(eval.Get("Path").size(), static_cast<size_t>(n * (n + 1) / 2));
}

}  // namespace
}  // namespace cpdb::datalog
