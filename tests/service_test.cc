// The concurrent service layer (src/service/): N curator sessions over
// ONE shared engine.
//
// The core property is oracle equivalence: whatever interleaving the
// threads produce, the committed interleaving is totally ordered by the
// engine's tid allocation, and replaying the committed transactions in
// tid order through a plain single-threaded Editor must reproduce the
// shared state bit for bit — provenance table, curated target content,
// and GetMod answers — for all four strategies. On top of that:
// engine-wide tid uniqueness (the old per-store counters would mint
// duplicates), leader/follower cohort combining with one fsync per
// cohort, crash atomicity of a group-committed cohort (whole cohort
// durable after the leader's fsync, whole cohort absent before it),
// session pooling, and race-free cost aggregation.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace cpdb {
namespace {

using provenance::ProvRecord;
using provenance::Strategy;
using service::Engine;
using service::Session;
using service::SessionPool;
using testutil::TempDir;
using tree::Path;
using update::Script;
using update::Update;

constexpr Strategy kStrategies[] = {
    Strategy::kNaive, Strategy::kHierarchical, Strategy::kTransactional,
    Strategy::kHierarchicalTransactional};

bool PerOp(Strategy s) {
  return s == Strategy::kNaive || s == Strategy::kHierarchical;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Everything one engine run needs, over an in-memory store.
struct Rig {
  explicit Rig(Strategy strategy) {
    prov_db = std::make_unique<relstore::Database>("provdb");
    backend = std::make_unique<provenance::ProvBackend>(prov_db.get());
    target = std::make_unique<wrap::TreeTargetDb>(
        "T", testutil::Figure4TargetT());
    s1 = std::make_unique<wrap::TreeSourceDb>("S1",
                                              testutil::Figure4SourceS1());
    engine = std::make_unique<Engine>(backend.get(), target.get());
    service::SessionOptions opts;
    opts.strategy = strategy;
    opts.sources = {s1.get()};
    pool = std::make_unique<SessionPool>(engine.get(), opts);
  }

  std::unique_ptr<relstore::Database> prov_db;
  std::unique_ptr<provenance::ProvBackend> backend;
  std::unique_ptr<wrap::TreeTargetDb> target;
  std::unique_ptr<wrap::TreeSourceDb> s1;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<SessionPool> pool;
};

/// The deterministic per-writer workload: txn 0 creates the writer's own
/// subtree under T; later txns insert a node with a value, copy a source
/// entry below it, and every third txn delete the previous node. All
/// paths stay inside T/w<i>, so concurrent writers are disjoint.
Script WriterScript(int writer, int txn) {
  std::string w = "w" + std::to_string(writer);
  Script script;
  if (txn == 0) {
    script.push_back(Update::Insert(Path::MustParse("T"), w));
    return script;
  }
  std::string n = "n" + std::to_string(txn);
  Path base = Path::MustParse("T/" + w);
  script.push_back(Update::Insert(base, n));
  script.push_back(
      Update::Insert(base.Child(n), "v", tree::Value(int64_t{txn})));
  script.push_back(Update::Copy(Path::MustParse("S1/a1"),
                                base.Child(n).Child("c")));
  if (txn % 3 == 2) {
    script.push_back(Update::Delete(base, "n" + std::to_string(txn - 1)));
  }
  return script;
}

/// One committed unit of the concurrent run: the script plus the tid
/// range it committed under (per-op strategies consume one tid per op).
struct CommittedUnit {
  int64_t first_tid = 0;
  Script script;
};

// ----- Engine-wide tid allocation ------------------------------------------

TEST(ServiceTidTest, ConcurrentAllocationNeverMintsDuplicates) {
  relstore::Database db("provdb");
  provenance::ProvBackend backend(&db);
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<int64_t>> minted(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      minted[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) minted[t].push_back(engine.NextTid());
    });
  }
  for (auto& th : threads) th.join();

  std::set<int64_t> all;
  for (const auto& v : minted) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), size_t{kThreads * kPerThread});
  EXPECT_EQ(*all.begin(), engine.base_tid() + 1);
  EXPECT_EQ(*all.rbegin(), engine.base_tid() + kThreads * kPerThread);
}

// Regression for the pre-service hazard: two editors over one backend
// each started their tid counter from the same MaxTid and committed the
// SAME tid. Engine-backed sessions must never collide, however their
// commits interleave.
TEST(ServiceTidTest, InterleavedSessionsNeverReuseATid) {
  Rig rig(Strategy::kTransactional);
  auto s1 = rig.pool->Acquire();
  auto s2 = rig.pool->Acquire();
  ASSERT_TRUE(s1.ok() && s2.ok());

  // Interleave staging, then commit in the opposite order.
  ASSERT_TRUE((*s1)->Apply(Update::Insert(Path::MustParse("T"), "a")).ok());
  ASSERT_TRUE((*s2)->Apply(Update::Insert(Path::MustParse("T"), "b")).ok());
  ASSERT_TRUE((*s2)->Commit().ok());
  ASSERT_TRUE((*s1)->Commit().ok());

  int64_t t1 = (*s1)->LastCommittedTid();
  int64_t t2 = (*s2)->LastCommittedTid();
  EXPECT_NE(t1, t2);
  EXPECT_EQ(std::min(t1, t2), rig.engine->base_tid() + 1);
  EXPECT_EQ(std::max(t1, t2), rig.engine->base_tid() + 2);

  // The store sees both transactions under their own numbers.
  auto all = rig.backend->GetAll();
  ASSERT_TRUE(all.ok());
  std::set<int64_t> tids;
  for (const ProvRecord& r : *all) tids.insert(r.tid);
  EXPECT_EQ(tids.size(), 2u);
}

// ----- Group commit --------------------------------------------------------

TEST(ServiceCommitQueueTest, CohortCombinesUnderOneExclusiveGrantAndFsync) {
  TempDir dir("svc_cohort");
  auto opened = relstore::Database::Open("provdb", dir.path());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<relstore::Database> db = std::move(opened).value();
  provenance::ProvBackend backend(db.get());
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);
  service::SessionOptions opts;
  opts.strategy = Strategy::kTransactional;
  SessionPool pool(&engine, opts);

  size_t fsyncs_before = db->cost().Fsyncs();

  // Stage three sessions up front (staging is latch-free for T), then pin
  // the engine in a read grant so the first committer (the leader) blocks
  // on the exclusive latch while the other two pile onto the queue: a
  // guaranteed cohort of three. (Acquiring inside the pinned window would
  // deadlock: session building takes a shared grant, which queues behind
  // the waiting leader.)
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < 3; ++i) {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)
                    ->Apply(Update::Insert(Path::MustParse("T"),
                                           "c" + std::to_string(100 + i)))
                    .ok());
    sessions.push_back(std::move(*s));
  }
  std::vector<std::thread> committers;
  {
    auto guard = engine.Read();
    for (int i = 0; i < 3; ++i) {
      committers.emplace_back(
          [&, i] { ASSERT_TRUE(sessions[i]->Commit().ok()); });
    }
    while (engine.commit_queue().Pending() < 3) {
      std::this_thread::yield();
    }
  }  // release the read grant: the leader drains all three
  for (auto& th : committers) th.join();
  for (auto& s : sessions) pool.Release(std::move(s));

  service::CommitQueue::Stats stats = engine.commit_queue().stats();
  EXPECT_EQ(stats.commits, 3u);
  EXPECT_EQ(stats.cohorts, 1u);
  EXPECT_EQ(stats.max_cohort, 3u);
  EXPECT_EQ(stats.combined, 2u);
  // The whole cohort sealed under ONE fsync barrier.
  EXPECT_EQ(db->cost().Fsyncs(), fsyncs_before + 1);
  // One exclusive grant -> one epoch advance.
  EXPECT_EQ(engine.latch().Epoch(), 1u);
  EXPECT_EQ(backend.RowCount(), 3u);
}

TEST(ServiceCrashTest, GroupCommitCohortIsAtomicAcrossACrash) {
  TempDir dir("svc_crash");
  auto opened = relstore::Database::Open("provdb", dir.path());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<relstore::Database> db = std::move(opened).value();
  provenance::ProvBackend backend(db.get());
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);
  service::SessionOptions opts;
  opts.strategy = Strategy::kTransactional;
  SessionPool pool(&engine, opts);

  const std::string wal = storage::Durability::WalPath(dir.path());

  // Baseline transaction, sealed normally.
  {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->Apply(Update::Insert(Path::MustParse("T"), "base")).ok());
    ASSERT_TRUE((*s)->Commit().ok());
    pool.Release(std::move(*s));
  }
  int64_t base_tid = engine.LastAllocatedTid();

  // Capture the log around the cohort's seal: `pre` is the disk image of
  // a crash after the leader applied the cohort but BEFORE its fsync,
  // `post` the image right after.
  std::string pre, post;
  engine.commit_queue().set_test_hooks(
      {[&](size_t) { pre = ReadFile(wal); },
       [&](size_t) { post = ReadFile(wal); }});

  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < 3; ++i) {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)
                    ->Apply(Update::Insert(Path::MustParse("T"),
                                           "c" + std::to_string(200 + i)))
                    .ok());
    sessions.push_back(std::move(*s));
  }
  std::vector<std::thread> committers;
  {
    auto guard = engine.Read();
    for (int i = 0; i < 3; ++i) {
      committers.emplace_back(
          [&, i] { ASSERT_TRUE(sessions[i]->Commit().ok()); });
    }
    while (engine.commit_queue().Pending() < 3) {
      std::this_thread::yield();
    }
  }
  for (auto& th : committers) th.join();
  for (auto& s : sessions) pool.Release(std::move(s));
  ASSERT_EQ(engine.commit_queue().stats().max_cohort, 3u);

  // Crash BEFORE the leader's fsync: the whole cohort is absent.
  {
    TempDir crash("svc_crash_pre");
    WriteFile(storage::Durability::WalPath(crash.path()), pre);
    auto reopened = relstore::Database::Open("provdb", crash.path());
    ASSERT_TRUE(reopened.ok());
    provenance::ProvBackend recovered(reopened.value().get());
    EXPECT_EQ(recovered.MaxTid(), base_tid);
    auto all = recovered.GetAll();
    ASSERT_TRUE(all.ok());
    for (const ProvRecord& r : *all) EXPECT_LE(r.tid, base_tid);
  }

  // Crash AFTER the leader's fsync: the whole cohort is durable.
  {
    TempDir crash("svc_crash_post");
    WriteFile(storage::Durability::WalPath(crash.path()), post);
    auto reopened = relstore::Database::Open("provdb", crash.path());
    ASSERT_TRUE(reopened.ok());
    provenance::ProvBackend recovered(reopened.value().get());
    EXPECT_EQ(recovered.MaxTid(), base_tid + 3);
    auto all = recovered.GetAll();
    ASSERT_TRUE(all.ok());
    std::set<int64_t> tids;
    for (const ProvRecord& r : *all) tids.insert(r.tid);
    for (int64_t t = base_tid + 1; t <= base_tid + 3; ++t) {
      EXPECT_EQ(tids.count(t), 1u) << "cohort member " << t << " missing";
    }
  }
}

// ----- Versioned snapshots (MVCC-lite) -------------------------------------

// A pinned reader is a time machine: however far the committed state
// advances, its session must keep answering — target subtree and
// provenance reads alike — exactly as a single-threaded replay of the
// committed transactions up to its watermark tid would. Readers are
// pinned at staggered points while writers run, then each is checked
// against its own oracle.
TEST(ServiceVersionedReadTest, PinnedReadersMatchTidOrderReplayAtWatermark) {
  const Strategy strategy = Strategy::kHierarchicalTransactional;
  constexpr int kWriters = 3;
  constexpr int kTxnsPerWriter = 6;
  constexpr size_t kMaxReaders = 8;

  Rig rig(strategy);
  std::vector<std::vector<CommittedUnit>> committed(kWriters);
  std::atomic<int> writers_done{0};

  // Reader 0 pins the bootstrap version BEFORE any writer starts: it is
  // guaranteed stale by the end, so the "old snapshot stays bit
  // identical" leg always runs even if the later acquires race past the
  // writers.
  std::vector<std::unique_ptr<Session>> pinned;
  {
    auto first = rig.pool->Acquire();
    ASSERT_TRUE(first.ok());
    pinned.push_back(std::move(*first));
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto acquired = rig.pool->Acquire();
      ASSERT_TRUE(acquired.ok());
      std::unique_ptr<Session> session = std::move(*acquired);
      for (int t = 0; t < kTxnsPerWriter; ++t) {
        Script script = WriterScript(w, t);
        ASSERT_TRUE(session->ApplyScript(script).ok());
        ASSERT_TRUE(session->Commit().ok());
        CommittedUnit unit;
        unit.script = std::move(script);
        unit.first_tid = session->LastCommittedTid();
        committed[w].push_back(std::move(unit));
      }
      rig.pool->Release(std::move(session));
      writers_done.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Pin more readers at whatever watermarks the race hands out; they
  // HOLD their pins until after the writers finish.
  while (writers_done.load(std::memory_order_relaxed) < kWriters &&
         pinned.size() < kMaxReaders) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    auto acquired = rig.pool->Acquire();
    ASSERT_TRUE(acquired.ok());
    pinned.push_back(std::move(*acquired));
  }
  for (auto& th : writers) th.join();

  std::vector<CommittedUnit> units;
  for (auto& per_writer : committed) {
    for (auto& u : per_writer) units.push_back(std::move(u));
  }
  std::sort(units.begin(), units.end(),
            [](const CommittedUnit& a, const CommittedUnit& b) {
              return a.first_tid < b.first_tid;
            });
  ASSERT_EQ(pinned.front()->snapshot_tid(), rig.engine->base_tid());

  for (std::unique_ptr<Session>& reader : pinned) {
    const int64_t watermark = reader->snapshot_tid();
    // The reader's oracle: identical initial state, replaying exactly
    // the committed prefix with tid <= watermark.
    relstore::Database oracle_db("provdb");
    provenance::ProvBackend oracle_backend(&oracle_db);
    wrap::TreeTargetDb oracle_target("T", testutil::Figure4TargetT());
    wrap::TreeSourceDb oracle_s1("S1", testutil::Figure4SourceS1());
    EditorOptions oracle_opts;
    oracle_opts.strategy = strategy;
    oracle_opts.first_tid = rig.engine->base_tid() + 1;
    auto oracle_ed =
        Editor::Create(&oracle_target, &oracle_backend, oracle_opts);
    ASSERT_TRUE(oracle_ed.ok());
    ASSERT_TRUE((*oracle_ed)->MountSource(&oracle_s1).ok());
    for (const CommittedUnit& u : units) {
      if (u.first_tid > watermark) break;
      ASSERT_TRUE((*oracle_ed)->ApplyScript(u.script).ok());
      ASSERT_TRUE((*oracle_ed)->Commit().ok());
    }

    // Target subtree: bit-identical to the oracle's content, no matter
    // how many younger versions were committed (and GCed) since.
    const tree::Tree* view =
        reader->editor()->universe().Find(Path::MustParse("T"));
    ASSERT_NE(view, nullptr);
    EXPECT_TRUE(view->Equals(oracle_target.content()))
        << "target view diverged at watermark " << watermark;

    // Provenance reads through the session's view stop at the
    // watermark: the shared table holds every writer's rows, but the
    // bounded scan must return exactly the oracle's table.
    auto want = oracle_backend.GetAll();
    ASSERT_TRUE(want.ok());
    auto guard = reader->ReadLock();
    auto got = reader->backend()->GetAll();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), want->size())
        << "row count diverged at watermark " << watermark;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_TRUE((*got)[i] == (*want)[i])
          << "record " << i << " diverged at watermark " << watermark;
    }
  }
  for (auto& reader : pinned) rig.pool->Release(std::move(reader));
}

TEST(ServiceVersionGcTest, OldestPinHoldsBackGcUntilReleased) {
  Rig rig(Strategy::kHierarchicalTransactional);

  // s_old pins the bootstrap version and holds it across the commit.
  auto s_old = rig.pool->Acquire();
  ASSERT_TRUE(s_old.ok());

  auto s_w = rig.pool->Acquire();
  ASSERT_TRUE(s_w.ok());
  ASSERT_TRUE(
      (*s_w)->Apply(Update::Insert(Path::MustParse("T"), "fresh")).ok());
  ASSERT_TRUE((*s_w)->Commit().ok());
  rig.pool->Release(std::move(*s_w));

  // Re-acquiring publishes the version at the new watermark; the old one
  // survives because s_old still pins it.
  auto s_new = rig.pool->Acquire();
  ASSERT_TRUE(s_new.ok());
  service::SnapshotManager::Stats stats = rig.engine->snapshot_stats();
  EXPECT_EQ(stats.versions_live, 2u);
  EXPECT_EQ(stats.versions_gced, 0u);

  // The pinned version is not just retained, it still ANSWERS as of its
  // watermark; the refreshed session sees the commit.
  EXPECT_EQ((*s_old)->editor()->universe().Find(Path::MustParse("T/fresh")),
            nullptr);
  EXPECT_NE((*s_new)->editor()->universe().Find(Path::MustParse("T/fresh")),
            nullptr);

  // Releasing the oldest pin unblocks collection of the superseded
  // version (Release marches the pooled session's pin to the newest
  // version precisely so idle inventory never holds GC back).
  rig.pool->Release(std::move(*s_old));
  stats = rig.engine->snapshot_stats();
  EXPECT_EQ(stats.versions_live, 1u);
  EXPECT_EQ(stats.versions_gced, 1u);
  EXPECT_EQ(stats.latest_tid, rig.engine->CommittedTid());
  rig.pool->Release(std::move(*s_new));
}

// Version chains are a runtime structure, not a durable one: after a
// crash, recovery rebuilds the provenance store from the WAL and the
// engine starts over with a single version at the recovered watermark —
// no history is resurrected.
TEST(ServiceRecoveryTest, RecoveryMaterializesLatestVersionOnly) {
  TempDir dir("svc_recover");
  int64_t final_tid = 0;
  tree::Tree final_target("T");
  {
    auto opened = relstore::Database::Open("provdb", dir.path());
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<relstore::Database> db = std::move(opened).value();
    provenance::ProvBackend backend(db.get());
    wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
    Engine engine(&backend, &target);
    service::SessionOptions opts;
    opts.strategy = Strategy::kHierarchicalTransactional;
    SessionPool pool(&engine, opts);

    // Churn versions: every re-acquire after a commit publishes a new
    // one (and GCs what no pin holds).
    for (int i = 0; i < 4; ++i) {
      auto s = pool.Acquire();
      ASSERT_TRUE(s.ok());
      ASSERT_TRUE((*s)
                      ->Apply(Update::Insert(Path::MustParse("T"),
                                             "r" + std::to_string(i)))
                      .ok());
      ASSERT_TRUE((*s)->Commit().ok());
      pool.Release(std::move(*s));
    }
    EXPECT_GT(engine.snapshot_stats().versions_published, 1u);
    final_tid = engine.CommittedTid();
    final_target = target.content().Clone();
  }  // crash: every in-memory structure (chain included) is gone

  auto reopened = relstore::Database::Open("provdb", dir.path());
  ASSERT_TRUE(reopened.ok());
  std::unique_ptr<relstore::Database> db = std::move(reopened).value();
  provenance::ProvBackend backend(db.get());
  // The target is an autonomous external database; it survives on its
  // own. Only the provenance store replays its WAL.
  wrap::TreeTargetDb target("T", std::move(final_target));
  Engine engine(&backend, &target);
  service::SessionOptions opts;
  opts.strategy = Strategy::kHierarchicalTransactional;
  SessionPool pool(&engine, opts);

  ASSERT_EQ(engine.base_tid(), final_tid);
  auto s = pool.Acquire();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->snapshot_tid(), final_tid);
  // Exactly one version, at the recovered watermark, materialized O(1).
  service::SnapshotManager::Stats stats = engine.snapshot_stats();
  EXPECT_EQ(stats.versions_published, 1u);
  EXPECT_EQ(stats.versions_live, 1u);
  EXPECT_EQ(stats.latest_tid, final_tid);
  EXPECT_EQ(stats.snapshot_rebuilds, 0u);
  // The recovered rows are all visible through the session's view.
  {
    auto guard = (*s)->ReadLock();
    auto all = (*s)->backend()->GetAll();
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all->size(), 4u);
    for (const ProvRecord& r : *all) EXPECT_LE(r.tid, final_tid);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE((*s)->editor()->universe().Find(
                  Path::MustParse("T/r" + std::to_string(i))),
              nullptr);
  }
  pool.Release(std::move(*s));
}

// ----- Disjoint-subtree parallel apply -------------------------------------

TEST(ServiceParallelApplyTest, DisjointCohortAppliesOnThePoolUnderOneFsync) {
  TempDir dir("svc_parallel");
  auto opened = relstore::Database::Open("provdb", dir.path());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<relstore::Database> db = std::move(opened).value();
  provenance::ProvBackend backend(db.get());
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);
  engine.EnableParallelApply(2);
  service::SessionOptions opts;
  opts.strategy = Strategy::kHierarchicalTransactional;
  SessionPool pool(&engine, opts);

  // Carve out one subtree per committer so the staged claims (the child
  // maps the native replay mutates) are pairwise disjoint.
  {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*s)
                      ->Apply(Update::Insert(Path::MustParse("T"),
                                             "p" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE((*s)->Commit().ok());
    pool.Release(std::move(*s));
  }

  service::CommitQueue::Stats before = engine.commit_queue().stats();
  size_t fsyncs_before = db->cost().Fsyncs();

  // Stage three disjoint writers, then pin the engine in a read grant so
  // all three pile onto the queue: a guaranteed cohort.
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < 3; ++i) {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    Path base = Path::MustParse("T/p" + std::to_string(i));
    ASSERT_TRUE((*s)->Apply(Update::Insert(base, "x", tree::Value(int64_t{i})))
                    .ok());
    sessions.push_back(std::move(*s));
  }
  std::vector<std::thread> committers;
  {
    auto guard = engine.Read();
    for (int i = 0; i < 3; ++i) {
      committers.emplace_back(
          [&, i] { ASSERT_TRUE(sessions[i]->Commit().ok()); });
    }
    while (engine.commit_queue().Pending() < 3) {
      std::this_thread::yield();
    }
  }
  for (auto& th : committers) th.join();
  for (auto& s : sessions) pool.Release(std::move(s));

  service::CommitQueue::Stats after = engine.commit_queue().stats();
  EXPECT_EQ(after.commits - before.commits, 3u);
  EXPECT_EQ(after.cohorts - before.cohorts, 1u);
  // The disjoint batch went to the apply pool...
  EXPECT_EQ(after.parallel_cohorts - before.parallel_cohorts, 1u);
  EXPECT_EQ(after.parallel_applies - before.parallel_applies, 3u);
  // ...and still sealed under exactly ONE fsync barrier (the commit
  // queue aborts the process if a parallel cohort ever syncs twice).
  EXPECT_EQ(db->cost().Fsyncs(), fsyncs_before + 1);

  for (int i = 0; i < 3; ++i) {
    const tree::Tree* node = target.content().Find(
        Path::MustParse("p" + std::to_string(i) + "/x"));
    ASSERT_NE(node, nullptr) << "p" << i << "/x missing";
  }
  EXPECT_EQ(backend.RowCount(), 3u + 3u);  // setup + cohort
}

TEST(ServiceParallelApplyTest, OverlappingClaimsFallBackToInOrderApply) {
  TempDir dir("svc_overlap");
  auto opened = relstore::Database::Open("provdb", dir.path());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<relstore::Database> db = std::move(opened).value();
  provenance::ProvBackend backend(db.get());
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);
  engine.EnableParallelApply(2);
  service::SessionOptions opts;
  opts.strategy = Strategy::kHierarchicalTransactional;
  SessionPool pool(&engine, opts);

  // Setup: T/p0/c exists.
  {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->Apply(Update::Insert(Path::MustParse("T"), "p0")).ok());
    ASSERT_TRUE(
        (*s)->Apply(Update::Insert(Path::MustParse("T/p0"), "c")).ok());
    ASSERT_TRUE((*s)->Commit().ok());
    pool.Release(std::move(*s));
  }

  // Session A writes INSIDE T/p0/c (claim p0/c); session B deletes c
  // itself (claim p0). The claims are prefix-related, so the cohort must
  // apply in queue order — A first, then B — never on the pool.
  auto sa = pool.Acquire();
  auto sb = pool.Acquire();
  ASSERT_TRUE(sa.ok() && sb.ok());
  ASSERT_TRUE(
      (*sa)->Apply(Update::Insert(Path::MustParse("T/p0/c"), "k")).ok());
  ASSERT_TRUE((*sb)->Apply(Update::Delete(Path::MustParse("T/p0"), "c")).ok());

  service::CommitQueue::Stats before = engine.commit_queue().stats();
  std::thread ta, tb;
  {
    auto guard = engine.Read();
    ta = std::thread([&] { ASSERT_TRUE((*sa)->Commit().ok()); });
    while (engine.commit_queue().Pending() < 1) std::this_thread::yield();
    tb = std::thread([&] { ASSERT_TRUE((*sb)->Commit().ok()); });
    while (engine.commit_queue().Pending() < 2) std::this_thread::yield();
  }  // release: A (the leader) drains both, in order
  ta.join();
  tb.join();
  pool.Release(std::move(*sa));
  pool.Release(std::move(*sb));

  service::CommitQueue::Stats after = engine.commit_queue().stats();
  EXPECT_EQ(after.commits - before.commits, 2u);
  EXPECT_EQ(after.cohorts - before.cohorts, 1u);
  EXPECT_EQ(after.parallel_cohorts - before.parallel_cohorts, 0u);
  EXPECT_EQ(after.parallel_applies - before.parallel_applies, 0u);
  // In-order semantics: the insert landed inside c, then the delete took
  // the whole subtree out.
  const tree::Tree& final_content = target.content();
  EXPECT_EQ(final_content.Find(Path::MustParse("p0/c")), nullptr);
}

// ----- Oracle equivalence --------------------------------------------------

class ServiceOracleTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(ServiceOracleTest, WritersAndReadersMatchSingleThreadedReplay) {
  const Strategy strategy = GetParam();
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kTxnsPerWriter = 8;

  Rig rig(strategy);

  std::vector<std::vector<CommittedUnit>> committed(kWriters);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto acquired = rig.pool->Acquire();
      ASSERT_TRUE(acquired.ok());
      std::unique_ptr<Session> session = std::move(*acquired);
      for (int t = 0; t < kTxnsPerWriter; ++t) {
        Script script = WriterScript(w, t);
        size_t applied = 0;
        ASSERT_TRUE(session->ApplyScript(script, &applied).ok());
        ASSERT_EQ(applied, script.size());
        ASSERT_TRUE(session->Commit().ok());
        CommittedUnit unit;
        unit.script = std::move(script);
        int64_t last = session->LastCommittedTid();
        unit.first_tid = PerOp(strategy)
                             ? last - static_cast<int64_t>(applied) + 1
                             : last;
        committed[w].push_back(std::move(unit));
      }
      rig.pool->Release(std::move(session));
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto acquired = rig.pool->Acquire();
        ASSERT_TRUE(acquired.ok());
        std::unique_ptr<Session> session = std::move(*acquired);
        {
          auto guard = session->ReadLock();
          // Stream the whole table and probe a subtree: concurrent with
          // the writers' cohorts, serialized by the latch.
          provenance::ProvCursor scan = session->backend()->ScanAll();
          std::vector<ProvRecord> batch;
          int64_t prev = 0;
          while (scan.Next(&batch, 128) > 0) {
            for (const ProvRecord& rec : batch) {
              ASSERT_GE(rec.tid, prev);  // (Tid, Loc) cursor order
              prev = rec.tid;
            }
          }
          ASSERT_TRUE(scan.status().ok());
          auto under = session->backend()->GetUnder(Path::MustParse("T/w0"));
          ASSERT_TRUE(under.ok());
        }
        rig.pool->Release(std::move(session));
      }
    });
  }

  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  // The committed interleaving: every unit, ordered by tid. Tids must be
  // consecutive from the engine's base — no duplicates, no gaps.
  std::vector<CommittedUnit> units;
  for (auto& per_writer : committed) {
    for (auto& u : per_writer) units.push_back(std::move(u));
  }
  std::sort(units.begin(), units.end(),
            [](const CommittedUnit& a, const CommittedUnit& b) {
              return a.first_tid < b.first_tid;
            });
  int64_t expect = rig.engine->base_tid() + 1;
  for (const CommittedUnit& u : units) {
    ASSERT_EQ(u.first_tid, expect);
    expect += PerOp(strategy) ? static_cast<int64_t>(u.script.size()) : 1;
  }
  ASSERT_EQ(expect, rig.engine->LastAllocatedTid() + 1);

  // Single-threaded oracle: a plain standalone editor replays the same
  // units in tid order against identical initial state.
  relstore::Database oracle_db("provdb");
  provenance::ProvBackend oracle_backend(&oracle_db);
  wrap::TreeTargetDb oracle_target("T", testutil::Figure4TargetT());
  wrap::TreeSourceDb oracle_s1("S1", testutil::Figure4SourceS1());
  EditorOptions oracle_opts;
  oracle_opts.strategy = strategy;
  oracle_opts.first_tid = rig.engine->base_tid() + 1;
  auto oracle_ed =
      Editor::Create(&oracle_target, &oracle_backend, oracle_opts);
  ASSERT_TRUE(oracle_ed.ok());
  ASSERT_TRUE((*oracle_ed)->MountSource(&oracle_s1).ok());
  for (const CommittedUnit& u : units) {
    ASSERT_TRUE((*oracle_ed)->ApplyScript(u.script).ok());
    ASSERT_TRUE((*oracle_ed)->Commit().ok());
  }

  // Provenance tables are bit-identical, in (Tid, Loc) order.
  auto got = rig.backend->GetAll();
  auto want = oracle_backend.GetAll();
  ASSERT_TRUE(got.ok() && want.ok());
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < got->size(); ++i) {
    EXPECT_TRUE((*got)[i] == (*want)[i]) << "record " << i << " diverged";
  }

  // The curated target converged to the oracle's content.
  EXPECT_TRUE(rig.target->content().Equals(oracle_target.content()));

  // And queries agree: GetMod over each writer's subtree, asked through
  // a fresh pooled session vs. the oracle's engine.
  auto query_session = rig.pool->Acquire();
  ASSERT_TRUE(query_session.ok());
  {
    auto guard = (*query_session)->ReadLock();
    for (int w = 0; w < kWriters; ++w) {
      Path p = Path::MustParse("T/w" + std::to_string(w));
      auto got_mod = (*query_session)->query()->GetMod(p);
      auto want_mod = (*oracle_ed)->query()->GetMod(p);
      ASSERT_TRUE(got_mod.ok() && want_mod.ok());
      EXPECT_EQ(*got_mod, *want_mod) << "GetMod(T/w" << w << ") diverged";
    }
  }
  rig.pool->Release(std::move(*query_session));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ServiceOracleTest,
                         ::testing::ValuesIn(kStrategies),
                         [](const auto& param_info) {
                           return std::string(
                               provenance::StrategyShortName(param_info.param));
                         });

// ----- Session pool and cost aggregation -----------------------------------

TEST(ServicePoolTest, ReusesFreshSessionsRefreshesStaleOnes) {
  Rig rig(Strategy::kHierarchicalTransactional);
  auto s = rig.pool->Acquire();
  ASSERT_TRUE(s.ok());
  rig.pool->Release(std::move(*s));
  EXPECT_EQ(rig.pool->built(), 1u);

  // No commits in between: the pinned version is still the committed
  // state and the session is handed back out untouched.
  auto again = rig.pool->Acquire();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(rig.pool->reused(), 1u);
  EXPECT_EQ(rig.pool->built(), 1u);
  EXPECT_EQ(rig.pool->refreshed(), 0u);

  // A commit advances the watermark; the pooled session is stale, but the
  // pool refreshes it in place — re-pin the newest version, swap the
  // target subtree — instead of building a second one.
  ASSERT_TRUE(
      (*again)->Apply(Update::Insert(Path::MustParse("T"), "fresh")).ok());
  ASSERT_TRUE((*again)->Commit().ok());
  int64_t committed = rig.engine->CommittedTid();
  rig.pool->Release(std::move(*again));
  auto refreshed = rig.pool->Acquire();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(rig.pool->built(), 1u);
  EXPECT_EQ(rig.pool->reused(), 2u);
  EXPECT_EQ(rig.pool->refreshed(), 1u);
  EXPECT_EQ((*refreshed)->snapshot_tid(), committed);
  // The refreshed snapshot sees the committed edit.
  EXPECT_NE(
      (*refreshed)->editor()->universe().Find(Path::MustParse("T/fresh")),
      nullptr);
  // And the refresh was a version swap, not a materialization: a
  // cheap-snapshot target never pays a full scan, bootstrap included.
  EXPECT_EQ(rig.engine->snapshot_stats().snapshot_rebuilds, 0u);
  EXPECT_EQ(rig.engine->snapshot_stats().snapshot_rebuild_rows, 0u);
  EXPECT_EQ(rig.engine->snapshot_stats().snapshot_refreshes, 1u);
  rig.pool->Release(std::move(*refreshed));
}

// The warm-pool acceptance criterion for the versioned-snapshot design:
// a pool cycling sessions under sustained write traffic must never pay a
// full materialization — zero rebuild rows — because every re-acquire is
// an O(1) re-pin + subtree swap.
TEST(ServicePoolTest, WarmPoolCopiesNothingUnderWriteTraffic) {
  Rig rig(Strategy::kHierarchicalTransactional);
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 10;

  // Warm the pool: one session per worker, pooled before traffic starts.
  {
    std::vector<std::unique_ptr<Session>> warm;
    for (int i = 0; i < kThreads; ++i) {
      auto s = rig.pool->Acquire();
      ASSERT_TRUE(s.ok());
      warm.push_back(std::move(*s));
    }
    for (auto& s : warm) rig.pool->Release(std::move(s));
  }
  ASSERT_EQ(rig.pool->built(), static_cast<size_t>(kThreads));

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int t = 0; t < kTxnsPerThread; ++t) {
        auto s = rig.pool->Acquire();
        ASSERT_TRUE(s.ok());
        ASSERT_TRUE((*s)->ApplyScript(WriterScript(w, t)).ok());
        ASSERT_TRUE((*s)->Commit().ok());
        rig.pool->Release(std::move(*s));
      }
    });
  }
  for (auto& th : workers) th.join();

  // Every acquire after the warm-up reused pooled inventory...
  EXPECT_EQ(rig.pool->built(), static_cast<size_t>(kThreads));
  EXPECT_EQ(rig.pool->reused(),
            static_cast<size_t>(kThreads * kTxnsPerThread));
  // ...and no acquire, refresh, or commit scanned the target: the chain
  // served every snapshot. This is the number the whole subsystem exists
  // to hold at zero.
  service::SnapshotManager::Stats stats = rig.engine->snapshot_stats();
  EXPECT_EQ(stats.snapshot_rebuilds, 0u);
  EXPECT_EQ(stats.snapshot_rebuild_rows, 0u);
  EXPECT_GT(stats.snapshot_refreshes, 0u);
  // Idle inventory marches its pins forward, so the chain stays pruned.
  EXPECT_EQ(stats.versions_live, 1u)
      << "published=" << stats.versions_published
      << " gced=" << stats.versions_gced
      << " refreshes=" << stats.snapshot_refreshes
      << " reused=" << rig.pool->reused()
      << " refreshed=" << rig.pool->refreshed();
}

TEST(ServiceCostTest, SessionChargesLandOnPrivateModelsAndAggregate) {
  Rig rig(Strategy::kTransactional);
  auto s = rig.pool->Acquire();
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->Apply(Update::Insert(Path::MustParse("T"), "x")).ok());
  ASSERT_TRUE((*s)->Commit().ok());
  {
    auto guard = (*s)->ReadLock();
    ASSERT_TRUE((*s)->backend()->GetAll().ok());
  }
  relstore::CostSnapshot session_cost = (*s)->cost().Snap();
  EXPECT_GT(session_cost.calls, 0u);
  EXPECT_GT(session_cost.write_calls, 0u);
  // The redirect is total: the shared database's own model saw none of
  // this session's traffic (in-memory store: no fsync charges either).
  EXPECT_EQ(rig.prov_db->cost().Calls(), 0u);

  rig.pool->Release(std::move(*s));
  relstore::CostSnapshot totals = rig.engine->cost_totals().Snap();
  EXPECT_EQ(totals.calls, session_cost.calls);
  EXPECT_EQ(totals.write_calls, session_cost.write_calls);
  EXPECT_EQ(totals.rows, session_cost.rows);
  EXPECT_DOUBLE_EQ(totals.micros, session_cost.micros);

  // A second session's costs accumulate on top.
  auto s2 = rig.pool->Acquire();
  ASSERT_TRUE(s2.ok());
  {
    auto guard = (*s2)->ReadLock();
    ASSERT_TRUE((*s2)->backend()->GetAll().ok());
  }
  relstore::CostSnapshot second = (*s2)->cost().Snap();
  rig.pool->Release(std::move(*s2));
  EXPECT_EQ(rig.engine->cost_totals().Snap().calls,
            session_cost.calls + second.calls);
}

TEST(ServicePoolTest, ReleaseAbortsAStagedTransaction) {
  Rig rig(Strategy::kHierarchicalTransactional);
  auto s = rig.pool->Acquire();
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      (*s)->Apply(Update::Insert(Path::MustParse("T"), "staged")).ok());
  rig.pool->Release(std::move(*s));  // curator walked away mid-edit
  EXPECT_EQ(rig.backend->RowCount(), 0u);
  EXPECT_EQ(rig.engine->LastAllocatedTid(), rig.engine->base_tid());
}

}  // namespace
}  // namespace cpdb
