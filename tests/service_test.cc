// The concurrent service layer (src/service/): N curator sessions over
// ONE shared engine.
//
// The core property is oracle equivalence: whatever interleaving the
// threads produce, the committed interleaving is totally ordered by the
// engine's tid allocation, and replaying the committed transactions in
// tid order through a plain single-threaded Editor must reproduce the
// shared state bit for bit — provenance table, curated target content,
// and GetMod answers — for all four strategies. On top of that:
// engine-wide tid uniqueness (the old per-store counters would mint
// duplicates), leader/follower cohort combining with one fsync per
// cohort, crash atomicity of a group-committed cohort (whole cohort
// durable after the leader's fsync, whole cohort absent before it),
// session pooling, and race-free cost aggregation.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace cpdb {
namespace {

using provenance::ProvRecord;
using provenance::Strategy;
using service::Engine;
using service::Session;
using service::SessionPool;
using testutil::TempDir;
using tree::Path;
using update::Script;
using update::Update;

constexpr Strategy kStrategies[] = {
    Strategy::kNaive, Strategy::kHierarchical, Strategy::kTransactional,
    Strategy::kHierarchicalTransactional};

bool PerOp(Strategy s) {
  return s == Strategy::kNaive || s == Strategy::kHierarchical;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Everything one engine run needs, over an in-memory store.
struct Rig {
  explicit Rig(Strategy strategy) {
    prov_db = std::make_unique<relstore::Database>("provdb");
    backend = std::make_unique<provenance::ProvBackend>(prov_db.get());
    target = std::make_unique<wrap::TreeTargetDb>(
        "T", testutil::Figure4TargetT());
    s1 = std::make_unique<wrap::TreeSourceDb>("S1",
                                              testutil::Figure4SourceS1());
    engine = std::make_unique<Engine>(backend.get(), target.get());
    service::SessionOptions opts;
    opts.strategy = strategy;
    opts.sources = {s1.get()};
    pool = std::make_unique<SessionPool>(engine.get(), opts);
  }

  std::unique_ptr<relstore::Database> prov_db;
  std::unique_ptr<provenance::ProvBackend> backend;
  std::unique_ptr<wrap::TreeTargetDb> target;
  std::unique_ptr<wrap::TreeSourceDb> s1;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<SessionPool> pool;
};

/// The deterministic per-writer workload: txn 0 creates the writer's own
/// subtree under T; later txns insert a node with a value, copy a source
/// entry below it, and every third txn delete the previous node. All
/// paths stay inside T/w<i>, so concurrent writers are disjoint.
Script WriterScript(int writer, int txn) {
  std::string w = "w" + std::to_string(writer);
  Script script;
  if (txn == 0) {
    script.push_back(Update::Insert(Path::MustParse("T"), w));
    return script;
  }
  std::string n = "n" + std::to_string(txn);
  Path base = Path::MustParse("T/" + w);
  script.push_back(Update::Insert(base, n));
  script.push_back(
      Update::Insert(base.Child(n), "v", tree::Value(int64_t{txn})));
  script.push_back(Update::Copy(Path::MustParse("S1/a1"),
                                base.Child(n).Child("c")));
  if (txn % 3 == 2) {
    script.push_back(Update::Delete(base, "n" + std::to_string(txn - 1)));
  }
  return script;
}

/// One committed unit of the concurrent run: the script plus the tid
/// range it committed under (per-op strategies consume one tid per op).
struct CommittedUnit {
  int64_t first_tid = 0;
  Script script;
};

// ----- Engine-wide tid allocation ------------------------------------------

TEST(ServiceTidTest, ConcurrentAllocationNeverMintsDuplicates) {
  relstore::Database db("provdb");
  provenance::ProvBackend backend(&db);
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<int64_t>> minted(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      minted[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) minted[t].push_back(engine.NextTid());
    });
  }
  for (auto& th : threads) th.join();

  std::set<int64_t> all;
  for (const auto& v : minted) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), size_t{kThreads * kPerThread});
  EXPECT_EQ(*all.begin(), engine.base_tid() + 1);
  EXPECT_EQ(*all.rbegin(), engine.base_tid() + kThreads * kPerThread);
}

// Regression for the pre-service hazard: two editors over one backend
// each started their tid counter from the same MaxTid and committed the
// SAME tid. Engine-backed sessions must never collide, however their
// commits interleave.
TEST(ServiceTidTest, InterleavedSessionsNeverReuseATid) {
  Rig rig(Strategy::kTransactional);
  auto s1 = rig.pool->Acquire();
  auto s2 = rig.pool->Acquire();
  ASSERT_TRUE(s1.ok() && s2.ok());

  // Interleave staging, then commit in the opposite order.
  ASSERT_TRUE((*s1)->Apply(Update::Insert(Path::MustParse("T"), "a")).ok());
  ASSERT_TRUE((*s2)->Apply(Update::Insert(Path::MustParse("T"), "b")).ok());
  ASSERT_TRUE((*s2)->Commit().ok());
  ASSERT_TRUE((*s1)->Commit().ok());

  int64_t t1 = (*s1)->LastCommittedTid();
  int64_t t2 = (*s2)->LastCommittedTid();
  EXPECT_NE(t1, t2);
  EXPECT_EQ(std::min(t1, t2), rig.engine->base_tid() + 1);
  EXPECT_EQ(std::max(t1, t2), rig.engine->base_tid() + 2);

  // The store sees both transactions under their own numbers.
  auto all = rig.backend->GetAll();
  ASSERT_TRUE(all.ok());
  std::set<int64_t> tids;
  for (const ProvRecord& r : *all) tids.insert(r.tid);
  EXPECT_EQ(tids.size(), 2u);
}

// ----- Group commit --------------------------------------------------------

TEST(ServiceCommitQueueTest, CohortCombinesUnderOneExclusiveGrantAndFsync) {
  TempDir dir("svc_cohort");
  auto opened = relstore::Database::Open("provdb", dir.path());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<relstore::Database> db = std::move(opened).value();
  provenance::ProvBackend backend(db.get());
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);
  service::SessionOptions opts;
  opts.strategy = Strategy::kTransactional;
  SessionPool pool(&engine, opts);

  size_t fsyncs_before = db->cost().Fsyncs();

  // Stage three sessions up front (staging is latch-free for T), then pin
  // the engine in a read grant so the first committer (the leader) blocks
  // on the exclusive latch while the other two pile onto the queue: a
  // guaranteed cohort of three. (Acquiring inside the pinned window would
  // deadlock: session building takes a shared grant, which queues behind
  // the waiting leader.)
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < 3; ++i) {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)
                    ->Apply(Update::Insert(Path::MustParse("T"),
                                           "c" + std::to_string(100 + i)))
                    .ok());
    sessions.push_back(std::move(*s));
  }
  std::vector<std::thread> committers;
  {
    auto guard = engine.Read();
    for (int i = 0; i < 3; ++i) {
      committers.emplace_back(
          [&, i] { ASSERT_TRUE(sessions[i]->Commit().ok()); });
    }
    while (engine.commit_queue().Pending() < 3) {
      std::this_thread::yield();
    }
  }  // release the read grant: the leader drains all three
  for (auto& th : committers) th.join();
  for (auto& s : sessions) pool.Release(std::move(s));

  service::CommitQueue::Stats stats = engine.commit_queue().stats();
  EXPECT_EQ(stats.commits, 3u);
  EXPECT_EQ(stats.cohorts, 1u);
  EXPECT_EQ(stats.max_cohort, 3u);
  EXPECT_EQ(stats.combined, 2u);
  // The whole cohort sealed under ONE fsync barrier.
  EXPECT_EQ(db->cost().Fsyncs(), fsyncs_before + 1);
  // One exclusive grant -> one epoch advance.
  EXPECT_EQ(engine.latch().Epoch(), 1u);
  EXPECT_EQ(backend.RowCount(), 3u);
}

TEST(ServiceCrashTest, GroupCommitCohortIsAtomicAcrossACrash) {
  TempDir dir("svc_crash");
  auto opened = relstore::Database::Open("provdb", dir.path());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<relstore::Database> db = std::move(opened).value();
  provenance::ProvBackend backend(db.get());
  wrap::TreeTargetDb target("T", testutil::Figure4TargetT());
  Engine engine(&backend, &target);
  service::SessionOptions opts;
  opts.strategy = Strategy::kTransactional;
  SessionPool pool(&engine, opts);

  const std::string wal = storage::Durability::WalPath(dir.path());

  // Baseline transaction, sealed normally.
  {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->Apply(Update::Insert(Path::MustParse("T"), "base")).ok());
    ASSERT_TRUE((*s)->Commit().ok());
    pool.Release(std::move(*s));
  }
  int64_t base_tid = engine.LastAllocatedTid();

  // Capture the log around the cohort's seal: `pre` is the disk image of
  // a crash after the leader applied the cohort but BEFORE its fsync,
  // `post` the image right after.
  std::string pre, post;
  engine.commit_queue().set_test_hooks(
      {[&](size_t) { pre = ReadFile(wal); },
       [&](size_t) { post = ReadFile(wal); }});

  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < 3; ++i) {
    auto s = pool.Acquire();
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)
                    ->Apply(Update::Insert(Path::MustParse("T"),
                                           "c" + std::to_string(200 + i)))
                    .ok());
    sessions.push_back(std::move(*s));
  }
  std::vector<std::thread> committers;
  {
    auto guard = engine.Read();
    for (int i = 0; i < 3; ++i) {
      committers.emplace_back(
          [&, i] { ASSERT_TRUE(sessions[i]->Commit().ok()); });
    }
    while (engine.commit_queue().Pending() < 3) {
      std::this_thread::yield();
    }
  }
  for (auto& th : committers) th.join();
  for (auto& s : sessions) pool.Release(std::move(s));
  ASSERT_EQ(engine.commit_queue().stats().max_cohort, 3u);

  // Crash BEFORE the leader's fsync: the whole cohort is absent.
  {
    TempDir crash("svc_crash_pre");
    WriteFile(storage::Durability::WalPath(crash.path()), pre);
    auto reopened = relstore::Database::Open("provdb", crash.path());
    ASSERT_TRUE(reopened.ok());
    provenance::ProvBackend recovered(reopened.value().get());
    EXPECT_EQ(recovered.MaxTid(), base_tid);
    auto all = recovered.GetAll();
    ASSERT_TRUE(all.ok());
    for (const ProvRecord& r : *all) EXPECT_LE(r.tid, base_tid);
  }

  // Crash AFTER the leader's fsync: the whole cohort is durable.
  {
    TempDir crash("svc_crash_post");
    WriteFile(storage::Durability::WalPath(crash.path()), post);
    auto reopened = relstore::Database::Open("provdb", crash.path());
    ASSERT_TRUE(reopened.ok());
    provenance::ProvBackend recovered(reopened.value().get());
    EXPECT_EQ(recovered.MaxTid(), base_tid + 3);
    auto all = recovered.GetAll();
    ASSERT_TRUE(all.ok());
    std::set<int64_t> tids;
    for (const ProvRecord& r : *all) tids.insert(r.tid);
    for (int64_t t = base_tid + 1; t <= base_tid + 3; ++t) {
      EXPECT_EQ(tids.count(t), 1u) << "cohort member " << t << " missing";
    }
  }
}

// ----- Oracle equivalence --------------------------------------------------

class ServiceOracleTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(ServiceOracleTest, WritersAndReadersMatchSingleThreadedReplay) {
  const Strategy strategy = GetParam();
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kTxnsPerWriter = 8;

  Rig rig(strategy);

  std::vector<std::vector<CommittedUnit>> committed(kWriters);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto acquired = rig.pool->Acquire();
      ASSERT_TRUE(acquired.ok());
      std::unique_ptr<Session> session = std::move(*acquired);
      for (int t = 0; t < kTxnsPerWriter; ++t) {
        Script script = WriterScript(w, t);
        size_t applied = 0;
        ASSERT_TRUE(session->ApplyScript(script, &applied).ok());
        ASSERT_EQ(applied, script.size());
        ASSERT_TRUE(session->Commit().ok());
        CommittedUnit unit;
        unit.script = std::move(script);
        int64_t last = session->LastCommittedTid();
        unit.first_tid = PerOp(strategy)
                             ? last - static_cast<int64_t>(applied) + 1
                             : last;
        committed[w].push_back(std::move(unit));
      }
      rig.pool->Release(std::move(session));
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto acquired = rig.pool->Acquire();
        ASSERT_TRUE(acquired.ok());
        std::unique_ptr<Session> session = std::move(*acquired);
        {
          auto guard = session->ReadLock();
          // Stream the whole table and probe a subtree: concurrent with
          // the writers' cohorts, serialized by the latch.
          provenance::ProvCursor scan = session->backend()->ScanAll();
          std::vector<ProvRecord> batch;
          int64_t prev = 0;
          while (scan.Next(&batch, 128) > 0) {
            for (const ProvRecord& rec : batch) {
              ASSERT_GE(rec.tid, prev);  // (Tid, Loc) cursor order
              prev = rec.tid;
            }
          }
          ASSERT_TRUE(scan.status().ok());
          auto under = session->backend()->GetUnder(Path::MustParse("T/w0"));
          ASSERT_TRUE(under.ok());
        }
        rig.pool->Release(std::move(session));
      }
    });
  }

  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  // The committed interleaving: every unit, ordered by tid. Tids must be
  // consecutive from the engine's base — no duplicates, no gaps.
  std::vector<CommittedUnit> units;
  for (auto& per_writer : committed) {
    for (auto& u : per_writer) units.push_back(std::move(u));
  }
  std::sort(units.begin(), units.end(),
            [](const CommittedUnit& a, const CommittedUnit& b) {
              return a.first_tid < b.first_tid;
            });
  int64_t expect = rig.engine->base_tid() + 1;
  for (const CommittedUnit& u : units) {
    ASSERT_EQ(u.first_tid, expect);
    expect += PerOp(strategy) ? static_cast<int64_t>(u.script.size()) : 1;
  }
  ASSERT_EQ(expect, rig.engine->LastAllocatedTid() + 1);

  // Single-threaded oracle: a plain standalone editor replays the same
  // units in tid order against identical initial state.
  relstore::Database oracle_db("provdb");
  provenance::ProvBackend oracle_backend(&oracle_db);
  wrap::TreeTargetDb oracle_target("T", testutil::Figure4TargetT());
  wrap::TreeSourceDb oracle_s1("S1", testutil::Figure4SourceS1());
  EditorOptions oracle_opts;
  oracle_opts.strategy = strategy;
  oracle_opts.first_tid = rig.engine->base_tid() + 1;
  auto oracle_ed =
      Editor::Create(&oracle_target, &oracle_backend, oracle_opts);
  ASSERT_TRUE(oracle_ed.ok());
  ASSERT_TRUE((*oracle_ed)->MountSource(&oracle_s1).ok());
  for (const CommittedUnit& u : units) {
    ASSERT_TRUE((*oracle_ed)->ApplyScript(u.script).ok());
    ASSERT_TRUE((*oracle_ed)->Commit().ok());
  }

  // Provenance tables are bit-identical, in (Tid, Loc) order.
  auto got = rig.backend->GetAll();
  auto want = oracle_backend.GetAll();
  ASSERT_TRUE(got.ok() && want.ok());
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < got->size(); ++i) {
    EXPECT_TRUE((*got)[i] == (*want)[i]) << "record " << i << " diverged";
  }

  // The curated target converged to the oracle's content.
  EXPECT_TRUE(rig.target->content().Equals(oracle_target.content()));

  // And queries agree: GetMod over each writer's subtree, asked through
  // a fresh pooled session vs. the oracle's engine.
  auto query_session = rig.pool->Acquire();
  ASSERT_TRUE(query_session.ok());
  {
    auto guard = (*query_session)->ReadLock();
    for (int w = 0; w < kWriters; ++w) {
      Path p = Path::MustParse("T/w" + std::to_string(w));
      auto got_mod = (*query_session)->query()->GetMod(p);
      auto want_mod = (*oracle_ed)->query()->GetMod(p);
      ASSERT_TRUE(got_mod.ok() && want_mod.ok());
      EXPECT_EQ(*got_mod, *want_mod) << "GetMod(T/w" << w << ") diverged";
    }
  }
  rig.pool->Release(std::move(*query_session));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ServiceOracleTest,
                         ::testing::ValuesIn(kStrategies),
                         [](const auto& param_info) {
                           return std::string(
                               provenance::StrategyShortName(param_info.param));
                         });

// ----- Session pool and cost aggregation -----------------------------------

TEST(ServicePoolTest, ReusesFreshSessionsRebuildsStaleOnes) {
  Rig rig(Strategy::kHierarchicalTransactional);
  auto s = rig.pool->Acquire();
  ASSERT_TRUE(s.ok());
  rig.pool->Release(std::move(*s));
  EXPECT_EQ(rig.pool->built(), 1u);

  // No commits in between: the snapshot is current and the session is
  // handed back out.
  auto again = rig.pool->Acquire();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(rig.pool->reused(), 1u);
  EXPECT_EQ(rig.pool->built(), 1u);

  // A commit advances the epoch; the pooled session is stale and a fresh
  // one is built.
  ASSERT_TRUE(
      (*again)->Apply(Update::Insert(Path::MustParse("T"), "fresh")).ok());
  ASSERT_TRUE((*again)->Commit().ok());
  rig.pool->Release(std::move(*again));
  auto rebuilt = rig.pool->Acquire();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rig.pool->built(), 2u);
  EXPECT_EQ(rig.pool->reused(), 1u);
  // The rebuilt snapshot sees the committed edit.
  EXPECT_NE((*rebuilt)->editor()->universe().Find(Path::MustParse("T/fresh")),
            nullptr);
  rig.pool->Release(std::move(*rebuilt));
}

TEST(ServiceCostTest, SessionChargesLandOnPrivateModelsAndAggregate) {
  Rig rig(Strategy::kTransactional);
  auto s = rig.pool->Acquire();
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->Apply(Update::Insert(Path::MustParse("T"), "x")).ok());
  ASSERT_TRUE((*s)->Commit().ok());
  {
    auto guard = (*s)->ReadLock();
    ASSERT_TRUE((*s)->backend()->GetAll().ok());
  }
  relstore::CostSnapshot session_cost = (*s)->cost().Snap();
  EXPECT_GT(session_cost.calls, 0u);
  EXPECT_GT(session_cost.write_calls, 0u);
  // The redirect is total: the shared database's own model saw none of
  // this session's traffic (in-memory store: no fsync charges either).
  EXPECT_EQ(rig.prov_db->cost().Calls(), 0u);

  rig.pool->Release(std::move(*s));
  relstore::CostSnapshot totals = rig.engine->cost_totals().Snap();
  EXPECT_EQ(totals.calls, session_cost.calls);
  EXPECT_EQ(totals.write_calls, session_cost.write_calls);
  EXPECT_EQ(totals.rows, session_cost.rows);
  EXPECT_DOUBLE_EQ(totals.micros, session_cost.micros);

  // A second session's costs accumulate on top.
  auto s2 = rig.pool->Acquire();
  ASSERT_TRUE(s2.ok());
  {
    auto guard = (*s2)->ReadLock();
    ASSERT_TRUE((*s2)->backend()->GetAll().ok());
  }
  relstore::CostSnapshot second = (*s2)->cost().Snap();
  rig.pool->Release(std::move(*s2));
  EXPECT_EQ(rig.engine->cost_totals().Snap().calls,
            session_cost.calls + second.calls);
}

TEST(ServicePoolTest, ReleaseAbortsAStagedTransaction) {
  Rig rig(Strategy::kHierarchicalTransactional);
  auto s = rig.pool->Acquire();
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(
      (*s)->Apply(Update::Insert(Path::MustParse("T"), "staged")).ok());
  rig.pool->Release(std::move(*s));  // curator walked away mid-edit
  EXPECT_EQ(rig.backend->RowCount(), 0u);
  EXPECT_EQ(rig.engine->LastAllocatedTid(), rig.engine->base_tid());
}

}  // namespace
}  // namespace cpdb
