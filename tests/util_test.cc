#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/flags.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/str.h"

namespace cpdb {
namespace {

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status {
    CPDB_RETURN_IF_ERROR(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsInternal());
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("no");
    return 5;
  };
  auto outer = [&](bool fail) -> Status {
    CPDB_ASSIGN_OR_RETURN(int v, inner(fail));
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_TRUE(outer(true).IsNotFound());
}

TEST(RngTest, DeterministicAndDistinct) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(1), c2(2);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StrTest, SplitJoin) {
  EXPECT_EQ(Split("a/b/c", '/'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Join({"a", "b"}, '/'), "a/b");
  EXPECT_EQ(Join({}, '/'), "");
}

TEST(StrTest, StartsEndsStrip) {
  EXPECT_TRUE(StartsWith("T/c1/y", "T/c1"));
  EXPECT_FALSE(StartsWith("T", "T/c1"));
  EXPECT_TRUE(EndsWith("foo.cc", ".cc"));
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
}

TEST(StrTest, ParseNumbers) {
  int64_t i;
  EXPECT_TRUE(ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("12x", &i));
  EXPECT_FALSE(ParseInt64("", &i));
  double d;
  EXPECT_TRUE(ParseDouble("2.5", &d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_FALSE(ParseDouble("abc", &d));
}

TEST(FlagsTest, ParsesBothForms) {
  const char* argv[] = {"prog", "--steps=100", "--name", "mix",
                        "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("steps", 0), 100);
  EXPECT_EQ(flags.GetString("name", ""), "mix");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(GlobSegmentsTest, UtilLevelMatcher) {
  EXPECT_TRUE(GlobMatchSegments({"a", "*", "c"}, {"a", "b", "c"}));
  EXPECT_FALSE(GlobMatchSegments({"a", "*", "c"}, {"a", "b", "d"}));
  EXPECT_TRUE(GlobMatchSegments({"a", "**"}, {"a"}));
  EXPECT_TRUE(GlobMatchSegments({"a", "**"}, {"a", "b", "c"}));
  EXPECT_TRUE(GlobMatchSegments({"pre*"}, {"prefix"}));
}

}  // namespace
}  // namespace cpdb
