#include <gtest/gtest.h>

#include "relstore/database.h"
#include "relstore/datum.h"
#include "relstore/exec.h"
#include "relstore/heap_file.h"
#include "relstore/page.h"
#include "relstore/schema.h"
#include "relstore/table.h"

namespace cpdb::relstore {
namespace {

// ----- Datum ---------------------------------------------------------------

TEST(DatumTest, EncodeDecodeRoundTrip) {
  for (const Datum& d : {Datum(), Datum(int64_t{-5}), Datum(3.25),
                         Datum("hello world"), Datum("")}) {
    std::string buf;
    d.EncodeTo(&buf);
    size_t pos = 0;
    Datum back;
    ASSERT_TRUE(Datum::DecodeFrom(buf, &pos, &back));
    EXPECT_EQ(back, d);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(DatumTest, RowEncodeDecode) {
  Row row = {Datum(int64_t{121}), Datum("C"), Datum("T/c2"), Datum("S1/a2")};
  std::string buf;
  EncodeRow(row, &buf);
  Row back;
  size_t pos = 0;
  ASSERT_TRUE(DecodeRow(buf, &pos, &back));
  EXPECT_EQ(back, row);
}

TEST(DatumTest, DecodeRejectsTruncation) {
  Row row = {Datum("abcdef")};
  std::string buf;
  EncodeRow(row, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Row back;
    size_t pos = 0;
    EXPECT_FALSE(DecodeRow(buf.substr(0, cut), &pos, &back)) << cut;
  }
}

TEST(DatumTest, HashConsistency) {
  EXPECT_EQ(Datum("x").Hash(), Datum("x").Hash());
  EXPECT_NE(Datum("x").Hash(), Datum("y").Hash());
  EXPECT_NE(Datum(int64_t{1}).Hash(), Datum(1.0).Hash());  // typed
}

// ----- Schema ----------------------------------------------------------------

TEST(SchemaTest, Validate) {
  Schema s({{"Tid", ColumnType::kInt64, false},
            {"Loc", ColumnType::kString, false},
            {"Src", ColumnType::kString, true}});
  EXPECT_TRUE(s.Validate({Datum(int64_t{1}), Datum("a"), Datum()}).ok());
  EXPECT_FALSE(s.Validate({Datum(int64_t{1}), Datum("a")}).ok());  // arity
  EXPECT_FALSE(
      s.Validate({Datum(), Datum("a"), Datum()}).ok());  // null pk
  EXPECT_FALSE(
      s.Validate({Datum("x"), Datum("a"), Datum()}).ok());  // type
}

// ----- Page / heap file -------------------------------------------------------

TEST(PageTest, InsertReadDelete) {
  Page page;
  auto s1 = page.Insert("hello");
  auto s2 = page.Insert("world!");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(page.Read(s1.value()).value(), "hello");
  EXPECT_EQ(page.Read(s2.value()).value(), "world!");
  ASSERT_TRUE(page.Delete(s1.value()).ok());
  EXPECT_FALSE(page.Read(s1.value()).ok());
  EXPECT_TRUE(page.Delete(s1.value()).IsNotFound());  // double delete
  EXPECT_EQ(page.LiveRecords(), 1u);
}

TEST(PageTest, FillsAndReportsFull) {
  Page page;
  std::string rec(100, 'x');
  size_t n = 0;
  while (page.Fits(rec.size())) {
    ASSERT_TRUE(page.Insert(rec).ok());
    ++n;
  }
  EXPECT_GT(n, 30u);  // ~4096/104
  EXPECT_FALSE(page.Insert(rec).ok());
}

TEST(PageTest, CompactionReclaimsDeletedSpace) {
  Page page;
  std::string rec(100, 'x');
  std::vector<uint16_t> slots;
  while (page.Fits(rec.size())) {
    slots.push_back(page.Insert(rec).value());
  }
  // Free half the page, then insert again: compaction must make room.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page.Delete(slots[i]).ok());
  }
  EXPECT_TRUE(page.Fits(rec.size()));
  auto slot = page.Insert(rec);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(page.Read(slot.value()).value(), rec);
  // Surviving records are intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(page.Read(slots[i]).value(), rec);
  }
}

TEST(PageTest, RejectsOversizedRecord) {
  Page page;
  EXPECT_FALSE(page.Insert(std::string(Page::kPageSize, 'x')).ok());
}

TEST(HeapFileTest, InsertReadDeleteScan) {
  HeapFile heap;
  std::vector<Rid> rids;
  for (int i = 0; i < 1000; ++i) {
    auto rid = heap.Insert("record-" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  EXPECT_EQ(heap.RecordCount(), 1000u);
  EXPECT_GT(heap.PageCount(), 1u);
  EXPECT_EQ(heap.Read(rids[123]).value(), "record-123");

  ASSERT_TRUE(heap.Delete(rids[500]).ok());
  EXPECT_FALSE(heap.Read(rids[500]).ok());
  EXPECT_EQ(heap.RecordCount(), 999u);

  size_t seen = 0;
  heap.Scan([&](const Rid&, const std::string&) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 999u);
}

TEST(HeapFileTest, ReusesFreedSpace) {
  HeapFile heap;
  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    rids.push_back(heap.Insert(std::string(64, 'a')).value());
  }
  size_t pages_before = heap.PageCount();
  for (const Rid& rid : rids) ASSERT_TRUE(heap.Delete(rid).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(heap.Insert(std::string(64, 'b')).ok());
  }
  EXPECT_EQ(heap.PageCount(), pages_before);  // no growth
}

// ----- Table -----------------------------------------------------------------

Schema ProvSchema() {
  return Schema({{"Tid", ColumnType::kInt64, false},
                 {"Op", ColumnType::kString, false},
                 {"Loc", ColumnType::kString, false},
                 {"Src", ColumnType::kString, true}});
}

TEST(TableTest, InsertAndScan) {
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(
      t.Insert({Datum(int64_t{1}), Datum("I"), Datum("T/a"), Datum()}).ok());
  ASSERT_TRUE(
      t.Insert({Datum(int64_t{2}), Datum("C"), Datum("T/b"), Datum("S/x")})
          .ok());
  EXPECT_EQ(t.RowCount(), 2u);
  size_t n = 0;
  t.Scan([&](const Rid&, const Row& row) {
    EXPECT_EQ(row.size(), 4u);
    ++n;
    return true;
  });
  EXPECT_EQ(n, 2u);
}

TEST(TableTest, BulkLoadBuildsIndexesAndEnforcesUnique) {
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {0, 2}, IndexKind::kBTree, true).ok());
  ASSERT_TRUE(t.CreateIndex("idx_loc", {2}, IndexKind::kBTree).ok());
  ASSERT_TRUE(t.CreateIndex("idx_tid", {0}, IndexKind::kHash).ok());
  std::vector<Row> rows;
  for (int i = 199; i >= 0; --i) {  // unsorted on purpose
    rows.push_back({Datum(int64_t{i}), Datum("I"),
                    Datum("T/n" + std::to_string(i)), Datum()});
  }
  auto loaded = t.BulkLoad(rows);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 200u);
  EXPECT_EQ(t.RowCount(), 200u);
  // All index kinds answer lookups after the bulk build.
  size_t hits = 0;
  auto count = [&](const Rid&, const Row&) {
    ++hits;
    return true;
  };
  ASSERT_TRUE(t.LookupEq("pk", {Datum(int64_t{42}), Datum("T/n42")}, count)
                  .ok());
  EXPECT_EQ(hits, 1u);
  hits = 0;
  ASSERT_TRUE(t.LookupEq("idx_loc", {Datum("T/n7")}, count).ok());
  EXPECT_EQ(hits, 1u);
  hits = 0;
  ASSERT_TRUE(t.LookupEq("idx_tid", {Datum(int64_t{3})}, count).ok());
  EXPECT_EQ(hits, 1u);
  // The B+tree index scans in key order and stays mutable afterwards.
  int64_t prev = -1;
  ASSERT_TRUE(t.ScanIndex("pk", [&](const Rid&, const Row& row) {
                 EXPECT_GT(row[0].AsInt(), prev);
                 prev = row[0].AsInt();
                 return true;
               }).ok());
  ASSERT_TRUE(
      t.Insert({Datum(int64_t{500}), Datum("I"), Datum("T/x"), Datum()})
          .ok());
  EXPECT_EQ(t.RowCount(), 201u);
}

TEST(TableTest, BulkLoadRejectsBadBatchesAtomically) {
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {0, 2}, IndexKind::kBTree, true).ok());
  // In-batch unique violation: same {Tid, Loc} twice.
  auto dup = t.BulkLoad(
      {{Datum(int64_t{1}), Datum("I"), Datum("T/a"), Datum()},
       {Datum(int64_t{1}), Datum("D"), Datum("T/a"), Datum()}});
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  EXPECT_EQ(t.RowCount(), 0u);  // nothing stored
  // Schema violation anywhere in the batch rejects the whole batch.
  auto bad = t.BulkLoad({{Datum(int64_t{1}), Datum("I"), Datum("T/a"),
                          Datum()},
                         {Datum("not-an-int"), Datum("I"), Datum("T/b"),
                          Datum()}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(t.RowCount(), 0u);
  // A good batch then loads, and BulkLoad on a non-empty table fails.
  ASSERT_TRUE(t.BulkLoad({{Datum(int64_t{1}), Datum("I"), Datum("T/a"),
                           Datum()}})
                  .ok());
  auto refill = t.BulkLoad({{Datum(int64_t{2}), Datum("I"), Datum("T/b"),
                             Datum()}});
  EXPECT_TRUE(refill.status().IsFailedPrecondition());
}

TEST(TableTest, BulkLoadRollsBackOnHeapFailure) {
  // Schema validation checks types, not encoded size; a record larger
  // than a page fails inside the heap mid-batch. The rows stored before
  // it must be un-stored so the table stays empty and reloadable.
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {0, 2}, IndexKind::kBTree, true).ok());
  std::string huge(Page::kPageSize + 1, 'x');
  auto bad = t.BulkLoad({{Datum(int64_t{1}), Datum("I"), Datum("T/a"),
                          Datum()},
                         {Datum(int64_t{2}), Datum("I"), Datum(huge),
                          Datum()}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(t.RowCount(), 0u);
  size_t scanned = 0;
  t.Scan([&](const Rid&, const Row&) {
    ++scanned;
    return true;
  });
  EXPECT_EQ(scanned, 0u);
  // The table is still empty, so a fresh bulk load succeeds.
  ASSERT_TRUE(t.BulkLoad({{Datum(int64_t{1}), Datum("I"), Datum("T/a"),
                           Datum()}})
                  .ok());
  EXPECT_EQ(t.RowCount(), 1u);
}

TEST(TableTest, UniqueIndexRejectsDuplicates) {
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(t.CreateIndex("pk", {0, 2}, IndexKind::kBTree, true).ok());
  ASSERT_TRUE(
      t.Insert({Datum(int64_t{1}), Datum("I"), Datum("T/a"), Datum()}).ok());
  // Same {Tid, Loc}: rejected (the paper's provenance-table key).
  auto dup =
      t.Insert({Datum(int64_t{1}), Datum("D"), Datum("T/a"), Datum()});
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  // Different Tid: fine.
  EXPECT_TRUE(
      t.Insert({Datum(int64_t{2}), Datum("D"), Datum("T/a"), Datum()}).ok());
}

TEST(TableTest, LookupEqThroughBothIndexKinds) {
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(t.CreateIndex("idx_tid", {0}, IndexKind::kHash).ok());
  ASSERT_TRUE(t.CreateIndex("idx_loc", {2}, IndexKind::kBTree).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.Insert({Datum(int64_t{i % 5}), Datum("I"),
                          Datum("T/n" + std::to_string(i)), Datum()})
                    .ok());
  }
  size_t hits = 0;
  ASSERT_TRUE(t.LookupEq("idx_tid", {Datum(int64_t{3})},
                         [&](const Rid&, const Row&) {
                           ++hits;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(hits, 10u);
  hits = 0;
  ASSERT_TRUE(t.LookupEq("idx_loc", {Datum("T/n7")},
                         [&](const Rid&, const Row&) {
                           ++hits;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(hits, 1u);
}

TEST(TableTest, PrefixScanFindsDescendants) {
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(t.CreateIndex("idx_loc", {2}, IndexKind::kBTree).ok());
  for (const char* loc :
       {"T/c1", "T/c1/x", "T/c1/y", "T/c10", "T/c2", "S/c1/x"}) {
    ASSERT_TRUE(
        t.Insert({Datum(int64_t{1}), Datum("I"), Datum(loc), Datum()}).ok());
  }
  std::vector<std::string> found;
  ASSERT_TRUE(t.ScanPrefix("idx_loc", "T/c1/",
                           [&](const Rid&, const Row& row) {
                             found.push_back(row[2].AsString());
                             return true;
                           })
                  .ok());
  // Strict descendants only: not T/c1 itself and not the sibling T/c10.
  EXPECT_EQ(found, (std::vector<std::string>{"T/c1/x", "T/c1/y"}));
}

TEST(TableTest, DeleteMaintainsIndexes) {
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(t.CreateIndex("idx_loc", {2}, IndexKind::kBTree).ok());
  auto rid =
      t.Insert({Datum(int64_t{1}), Datum("I"), Datum("T/a"), Datum()});
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(t.Delete(rid.value()).ok());
  size_t hits = 0;
  ASSERT_TRUE(t.LookupEq("idx_loc", {Datum("T/a")},
                         [&](const Rid&, const Row&) {
                           ++hits;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(hits, 0u);
}

TEST(TableTest, DeleteWhere) {
  Table t("Prov", ProvSchema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.Insert({Datum(int64_t{i}), Datum(i % 2 ? "I" : "D"),
                          Datum("T/x"), Datum()})
                    .ok());
  }
  size_t removed =
      t.DeleteWhere([](const Row& row) { return row[1].AsString() == "D"; });
  EXPECT_EQ(removed, 10u);
  EXPECT_EQ(t.RowCount(), 10u);
}

TEST(TableTest, IndexedDeleteWhereRoutesThroughIndex) {
  // Regression: with an equality predicate on an indexed column, the
  // index-routed DeleteWhere must touch only the matching rows, not run
  // the predicate over the whole heap (the old full-scan behavior).
  Table t("Prov", ProvSchema());
  ASSERT_TRUE(t.CreateIndex("idx_loc", {2}, IndexKind::kBTree).ok());
  constexpr size_t kRows = 2000;
  constexpr size_t kMatches = 5;
  for (size_t i = 0; i < kRows; ++i) {
    std::string loc =
        i < kMatches ? "T/victim" : "T/other/n" + std::to_string(i);
    ASSERT_TRUE(t.Insert({Datum(static_cast<int64_t>(i)), Datum("I"),
                          Datum(loc), Datum()})
                    .ok());
  }
  // Row cost pin: the residual predicate sees only the index matches —
  // kMatches row fetches instead of a kRows-row heap scan.
  size_t rows_examined = 0;
  auto removed = t.DeleteWhere("idx_loc", {Datum("T/victim")},
                               [&](const Row& row) {
                                 ++rows_examined;
                                 return row[1].AsString() == "I";
                               });
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), kMatches);
  EXPECT_EQ(rows_examined, kMatches);
  EXPECT_EQ(t.RowCount(), kRows - kMatches);
  // The key is gone from the index, and non-matching rows survived.
  size_t hits = 0;
  ASSERT_TRUE(t.LookupEq("idx_loc", {Datum("T/victim")},
                         [&](const Rid&, const Row&) {
                           ++hits;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(hits, 0u);

  // No-predicate form deletes all matches of the key outright.
  ASSERT_TRUE(t.Insert({Datum(int64_t{90001}), Datum("I"),
                        Datum("T/victim"), Datum()})
                  .ok());
  auto removed2 = t.DeleteWhere("idx_loc", {Datum("T/victim")});
  ASSERT_TRUE(removed2.ok());
  EXPECT_EQ(removed2.value(), 1u);

  // Bad index name / key arity are reported, not silently scanned.
  EXPECT_FALSE(t.DeleteWhere("no_such_index", {Datum("x")}).ok());
  EXPECT_FALSE(t.DeleteWhere("idx_loc", {Datum("x"), Datum("y")}).ok());
}

TEST(TableTest, PhysicalBytesArePageMultiples) {
  Table t("Prov", ProvSchema());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.Insert({Datum(int64_t{i}), Datum("C"),
                          Datum("T/some/fairly/long/path/n" +
                                std::to_string(i)),
                          Datum("S/source/path")})
                    .ok());
  }
  EXPECT_EQ(t.PhysicalBytes() % Page::kPageSize, 0u);
  EXPECT_GT(t.PhysicalBytes(), t.LiveBytes());
  EXPECT_GT(t.LiveBytes(), 0u);
}

// ----- Database / executor ----------------------------------------------------

TEST(DatabaseTest, CatalogOperations) {
  Database db("provdb");
  ASSERT_TRUE(db.CreateTable("Prov", ProvSchema()).ok());
  EXPECT_TRUE(db.CreateTable("Prov", ProvSchema()).status().IsAlreadyExists());
  EXPECT_TRUE(db.GetTable("Prov").ok());
  EXPECT_TRUE(db.GetTable("zz").status().IsNotFound());
  ASSERT_TRUE(db.DropTable("Prov").ok());
  EXPECT_TRUE(db.GetTable("Prov").status().IsNotFound());
}

TEST(ExecTest, FilterProjectPipeline) {
  Table t("Prov", ProvSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Datum(int64_t{i}), Datum(i < 5 ? "I" : "C"),
                          Datum("T/n" + std::to_string(i)), Datum()})
                    .ok());
  }
  auto it = MakeProject(
      MakeFilter(MakeSeqScan(&t),
                 [](const Row& r) { return r[1].AsString() == "C"; }),
      {0, 2});
  auto rows = it->Collect();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].size(), 2u);
}

TEST(ExecTest, HashJoin) {
  // Prov join TxnMeta on Tid.
  Table prov("Prov", ProvSchema());
  ASSERT_TRUE(prov.Insert({Datum(int64_t{1}), Datum("I"), Datum("T/a"),
                           Datum()})
                  .ok());
  ASSERT_TRUE(prov.Insert({Datum(int64_t{2}), Datum("C"), Datum("T/b"),
                           Datum("S/x")})
                  .ok());
  ASSERT_TRUE(prov.Insert({Datum(int64_t{2}), Datum("C"), Datum("T/c"),
                           Datum("S/y")})
                  .ok());
  std::vector<Row> meta = {{Datum(int64_t{2}), Datum("alice")},
                           {Datum(int64_t{3}), Datum("bob")}};
  auto joined = MakeHashJoin(MakeSeqScan(&prov), {0},
                             MakeValues(meta), {0})
                    ->Collect();
  ASSERT_EQ(joined.size(), 2u);  // only tid 2 matches
  for (const Row& r : joined) {
    EXPECT_EQ(r.size(), 6u);
    EXPECT_EQ(r[5].AsString(), "alice");
  }
}

TEST(ExecTest, SortDistinctLimit) {
  std::vector<Row> rows = {{Datum(int64_t{3})}, {Datum(int64_t{1})},
                           {Datum(int64_t{3})}, {Datum(int64_t{2})}};
  auto out = MakeLimit(MakeSort(MakeDistinct(MakeValues(rows)), {0}), 2)
                 ->Collect();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0].AsInt(), 1);
  EXPECT_EQ(out[1][0].AsInt(), 2);
}

// ----- Cursor scans / batched lookups ---------------------------------------

/// A Prov-shaped table with a composite {Loc, Tid} index, as the
/// provenance backend builds it.
Table MakeScanTable() {
  Table t("Prov", ProvSchema());
  EXPECT_TRUE(t.CreateIndex("pk", {0, 2}, IndexKind::kBTree, true).ok());
  EXPECT_TRUE(t.CreateIndex("loc_tid", {2, 0}, IndexKind::kBTree).ok());
  for (int64_t tid = 1; tid <= 3; ++tid) {
    for (const char* loc : {"T/a", "T/a/x", "T/a/y", "T/ab", "T/b"}) {
      EXPECT_TRUE(
          t.Insert({Datum(tid), Datum("I"), Datum(loc), Datum()}).ok());
    }
  }
  return t;
}

TEST(TableCursorTest, EqPrefixScanStreamsInKeyOrder) {
  Table t = MakeScanTable();
  ScanSpec spec;
  spec.index = "loc_tid";
  spec.eq = {Datum("T/a")};
  auto cur = t.OpenScan(std::move(spec));
  ASSERT_TRUE(cur.ok());
  Row row;
  std::vector<int64_t> tids;
  while (cur->Next(&row)) {
    EXPECT_EQ(row[2].AsString(), "T/a");
    tids.push_back(row[0].AsInt());
  }
  EXPECT_TRUE(cur->status().ok());
  EXPECT_TRUE(cur->done());
  EXPECT_EQ(tids, (std::vector<int64_t>{1, 2, 3}));  // (Loc, Tid) order
}

TEST(TableCursorTest, StringPrefixScanExcludesSiblingsAndStrangers) {
  Table t = MakeScanTable();
  ScanSpec spec;
  spec.index = "loc_tid";
  spec.prefix = "T/a/";
  auto cur = t.OpenScan(std::move(spec));
  ASSERT_TRUE(cur.ok());
  Row row;
  size_t n = 0;
  while (cur->Next(&row)) {
    EXPECT_TRUE(row[2].AsString() == "T/a/x" || row[2].AsString() == "T/a/y");
    ++n;
  }
  EXPECT_EQ(n, 6u);  // 2 locs x 3 tids; neither "T/a" nor "T/ab"
}

TEST(TableCursorTest, BatchNextHonoursCallerBufferAndLimit) {
  Table t = MakeScanTable();
  ScanSpec spec;
  spec.index = "pk";
  spec.limit = 7;
  auto cur = t.OpenScan(std::move(spec));
  ASSERT_TRUE(cur.ok());
  std::vector<Row> batch;
  EXPECT_EQ(cur->Next(&batch, 5), 5u);
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(cur->Next(&batch, 5), 2u);  // limit 7 cuts the second batch
  EXPECT_EQ(cur->Next(&batch, 5), 0u);
  EXPECT_TRUE(cur->done());
}

TEST(TableCursorTest, PredicatePushdownFiltersServerSide) {
  Table t = MakeScanTable();
  ScanSpec spec;
  spec.index = "pk";
  spec.predicate = [](const Row& row) { return row[0].AsInt() == 2; };
  auto cur = t.OpenScan(std::move(spec));
  ASSERT_TRUE(cur.ok());
  Row row;
  size_t n = 0;
  while (cur->Next(&row)) {
    EXPECT_EQ(row[0].AsInt(), 2);
    ++n;
  }
  EXPECT_EQ(n, 5u);
}

TEST(TableCursorTest, LowerBoundStartsMidRange) {
  Table t = MakeScanTable();
  ScanSpec spec;
  spec.index = "pk";
  spec.lower = {Datum(int64_t{3})};  // partial-arity bound
  auto cur = t.OpenScan(std::move(spec));
  ASSERT_TRUE(cur.ok());
  Row row;
  size_t n = 0;
  while (cur->Next(&row)) {
    EXPECT_EQ(row[0].AsInt(), 3);
    ++n;
  }
  EXPECT_EQ(n, 5u);
}

TEST(TableCursorTest, RejectsBadSpecs) {
  Table t = MakeScanTable();
  ScanSpec missing;
  missing.index = "nope";
  EXPECT_FALSE(t.OpenScan(std::move(missing)).ok());
  ScanSpec fat;
  fat.index = "pk";
  fat.eq = {Datum(int64_t{1}), Datum("T/a"), Datum("x")};
  EXPECT_FALSE(t.OpenScan(std::move(fat)).ok());
}

TEST(TableMultiGetTest, ResolvesBatchGroupedByKeyOrder) {
  Table t = MakeScanTable();
  std::vector<Row> keys = {{Datum(int64_t{2}), Datum("T/b")},
                           {Datum(int64_t{9}), Datum("T/zz")},  // miss
                           {Datum(int64_t{1}), Datum("T/a")}};
  std::vector<std::pair<size_t, std::string>> hits;
  ASSERT_TRUE(t.MultiGet("pk", keys,
                         [&](size_t i, const Rid&, const Row& row) {
                           hits.emplace_back(i, row[2].AsString());
                           return true;
                         })
                  .ok());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], (std::pair<size_t, std::string>{0, "T/b"}));
  EXPECT_EQ(hits[1], (std::pair<size_t, std::string>{2, "T/a"}));
  // Arity mismatch is refused.
  EXPECT_FALSE(t.MultiGet("pk", {{Datum(int64_t{1})}},
                          [](size_t, const Rid&, const Row&) { return true; })
                   .ok());
}

TEST(CostModelTest, SnapshotDeltasCountRoundTrips) {
  CostModel cost;
  cost.ChargeCall(3);
  CostSnapshot before = cost.Snap();
  cost.ChargeCall(2);
  cost.ChargeCall(0);
  CostSnapshot after = cost.Snap();
  EXPECT_EQ(after.calls - before.calls, 2u);
  EXPECT_EQ(after.rows - before.rows, 2u);
  EXPECT_GT(after.micros, before.micros);
}

TEST(CostModelTest, ChargesRoundTripsAndRows) {
  CostModel cost(CostParams{100.0, 10.0, 0.0});
  cost.ChargeCall(0);
  EXPECT_DOUBLE_EQ(cost.ElapsedMicros(), 100.0);
  cost.ChargeCall(4);
  EXPECT_DOUBLE_EQ(cost.ElapsedMicros(), 240.0);
  EXPECT_EQ(cost.Calls(), 2u);
  EXPECT_EQ(cost.RowsMoved(), 4u);
  cost.Reset();
  EXPECT_DOUBLE_EQ(cost.ElapsedMicros(), 0.0);
}

}  // namespace
}  // namespace cpdb::relstore
