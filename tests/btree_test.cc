#include "relstore/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/rng.h"

namespace cpdb::relstore {
namespace {

Row K(const std::string& s) { return Row{Datum(s)}; }
Row K(int64_t i) { return Row{Datum(i)}; }

TEST(BTreeTest, EmptyTree) {
  BTree bt;
  EXPECT_TRUE(bt.empty());
  EXPECT_EQ(bt.Height(), 1u);
  size_t n = 0;
  bt.ScanAll([&](const Row&, const Rid&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 0u);
}

TEST(BTreeTest, InsertAndLookup) {
  BTree bt;
  bt.Insert(K("b"), Rid{0, 1});
  bt.Insert(K("a"), Rid{0, 2});
  bt.Insert(K("c"), Rid{0, 3});
  std::vector<Rid> found;
  bt.LookupEq(K("a"), [&](const Row&, const Rid& rid) {
    found.push_back(rid);
    return true;
  });
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], (Rid{0, 2}));
}

TEST(BTreeTest, DuplicateKeysAllSurface) {
  BTree bt;
  for (uint16_t i = 0; i < 10; ++i) bt.Insert(K("dup"), Rid{0, i});
  size_t n = 0;
  bt.LookupEq(K("dup"), [&](const Row&, const Rid&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 10u);
  // Exact duplicate (key, rid) pairs are idempotent.
  bt.Insert(K("dup"), Rid{0, 3});
  EXPECT_EQ(bt.size(), 10u);
}

TEST(BTreeTest, OrderedScan) {
  BTree bt;
  for (int i = 999; i >= 0; --i) {
    bt.Insert(K("k" + std::to_string(1000 + i)), Rid{0, 0});
  }
  std::vector<std::string> keys;
  bt.ScanAll([&](const Row& k, const Rid&) {
    keys.push_back(k[0].AsString());
    return true;
  });
  ASSERT_EQ(keys.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_GT(bt.Height(), 1u);  // must actually have split
}

TEST(BTreeTest, ScanFromStartsAtLowerBound) {
  BTree bt;
  for (int i = 0; i < 100; ++i) {
    bt.Insert(K(int64_t{i * 2}), Rid{0, 0});  // even keys
  }
  std::vector<int64_t> seen;
  bt.ScanFrom(K(int64_t{51}), [&](const Row& k, const Rid&) {
    seen.push_back(k[0].AsInt());
    return seen.size() < 3;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{52, 54, 56}));
}

TEST(BTreeTest, EraseRemovesSpecificEntry) {
  BTree bt;
  bt.Insert(K("a"), Rid{0, 1});
  bt.Insert(K("a"), Rid{0, 2});
  EXPECT_TRUE(bt.Erase(K("a"), Rid{0, 1}));
  EXPECT_FALSE(bt.Erase(K("a"), Rid{0, 1}));  // already gone
  size_t n = 0;
  bt.LookupEq(K("a"), [&](const Row&, const Rid&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);
}

// Property sweep: random interleaved inserts/erases stay consistent with
// a reference std::multimap across tree sizes.
class BTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeRandomTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  BTree bt;
  std::set<std::pair<std::string, uint16_t>> model;

  for (int step = 0; step < 4000; ++step) {
    std::string key = "k" + std::to_string(rng.NextBelow(500));
    uint16_t rid_slot = static_cast<uint16_t>(rng.NextBelow(4));
    if (rng.NextBool(0.6)) {
      bt.Insert(K(key), Rid{0, rid_slot});
      model.emplace(key, rid_slot);
    } else {
      bool erased = bt.Erase(K(key), Rid{0, rid_slot});
      bool model_erased = model.erase({key, rid_slot}) > 0;
      ASSERT_EQ(erased, model_erased) << "step " << step << " key " << key;
    }
  }
  ASSERT_EQ(bt.size(), model.size());
  bt.CheckInvariants();

  // Full ordered scan equals the model's ordering.
  std::vector<std::pair<std::string, uint16_t>> scanned;
  bt.ScanAll([&](const Row& k, const Rid& rid) {
    scanned.emplace_back(k[0].AsString(), rid.slot);
    return true;
  });
  std::vector<std::pair<std::string, uint16_t>> expected(model.begin(),
                                                         model.end());
  ASSERT_EQ(scanned, expected);

  // Point lookups agree on a sample of keys.
  for (int i = 0; i < 50; ++i) {
    std::string key = "k" + std::to_string(rng.NextBelow(500));
    std::set<uint16_t> got;
    bt.LookupEq(K(key), [&](const Row&, const Rid& rid) {
      got.insert(rid.slot);
      return true;
    });
    std::set<uint16_t> want;
    for (uint16_t s = 0; s < 4; ++s) {
      if (model.count({key, s}) > 0) want.insert(s);
    }
    ASSERT_EQ(got, want) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(BTreeTest, LargeMonotonicInsertThenDrain) {
  BTree bt;
  for (int i = 0; i < 20000; ++i) {
    bt.Insert(K(int64_t{i}), Rid{0, 0});
  }
  EXPECT_EQ(bt.size(), 20000u);
  bt.CheckInvariants();
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(bt.Erase(K(int64_t{i}), Rid{0, 0})) << i;
  }
  EXPECT_TRUE(bt.empty());
  bt.CheckInvariants();
}

}  // namespace
}  // namespace cpdb::relstore
