#include "relstore/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace cpdb::relstore {
namespace {

Row K(const std::string& s) { return Row{Datum(s)}; }
Row K(int64_t i) { return Row{Datum(i)}; }

TEST(BTreeTest, EmptyTree) {
  BTree bt;
  EXPECT_TRUE(bt.empty());
  EXPECT_EQ(bt.Height(), 1u);
  size_t n = 0;
  bt.ScanAll([&](const Row&, const Rid&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 0u);
}

TEST(BTreeTest, InsertAndLookup) {
  BTree bt;
  bt.Insert(K("b"), Rid{0, 1});
  bt.Insert(K("a"), Rid{0, 2});
  bt.Insert(K("c"), Rid{0, 3});
  std::vector<Rid> found;
  bt.LookupEq(K("a"), [&](const Row&, const Rid& rid) {
    found.push_back(rid);
    return true;
  });
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], (Rid{0, 2}));
}

TEST(BTreeTest, DuplicateKeysAllSurface) {
  BTree bt;
  for (uint16_t i = 0; i < 10; ++i) bt.Insert(K("dup"), Rid{0, i});
  size_t n = 0;
  bt.LookupEq(K("dup"), [&](const Row&, const Rid&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 10u);
  // Exact duplicate (key, rid) pairs are idempotent.
  bt.Insert(K("dup"), Rid{0, 3});
  EXPECT_EQ(bt.size(), 10u);
}

TEST(BTreeTest, OrderedScan) {
  BTree bt;
  for (int i = 999; i >= 0; --i) {
    bt.Insert(K("k" + std::to_string(1000 + i)), Rid{0, 0});
  }
  std::vector<std::string> keys;
  bt.ScanAll([&](const Row& k, const Rid&) {
    keys.push_back(k[0].AsString());
    return true;
  });
  ASSERT_EQ(keys.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_GT(bt.Height(), 1u);  // must actually have split
}

TEST(BTreeTest, ScanFromStartsAtLowerBound) {
  BTree bt;
  for (int i = 0; i < 100; ++i) {
    bt.Insert(K(int64_t{i * 2}), Rid{0, 0});  // even keys
  }
  std::vector<int64_t> seen;
  bt.ScanFrom(K(int64_t{51}), [&](const Row& k, const Rid&) {
    seen.push_back(k[0].AsInt());
    return seen.size() < 3;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{52, 54, 56}));
}

TEST(BTreeTest, EraseRemovesSpecificEntry) {
  BTree bt;
  bt.Insert(K("a"), Rid{0, 1});
  bt.Insert(K("a"), Rid{0, 2});
  EXPECT_TRUE(bt.Erase(K("a"), Rid{0, 1}));
  EXPECT_FALSE(bt.Erase(K("a"), Rid{0, 1}));  // already gone
  size_t n = 0;
  bt.LookupEq(K("a"), [&](const Row&, const Rid&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);
}

// Property sweep: random interleaved inserts/erases stay consistent with
// a reference std::multimap across tree sizes.
class BTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeRandomTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  BTree bt;
  std::set<std::pair<std::string, uint16_t>> model;

  for (int step = 0; step < 4000; ++step) {
    std::string key = "k" + std::to_string(rng.NextBelow(500));
    uint16_t rid_slot = static_cast<uint16_t>(rng.NextBelow(4));
    if (rng.NextBool(0.6)) {
      bt.Insert(K(key), Rid{0, rid_slot});
      model.emplace(key, rid_slot);
    } else {
      bool erased = bt.Erase(K(key), Rid{0, rid_slot});
      bool model_erased = model.erase({key, rid_slot}) > 0;
      ASSERT_EQ(erased, model_erased) << "step " << step << " key " << key;
    }
  }
  ASSERT_EQ(bt.size(), model.size());
  bt.CheckInvariants();

  // Full ordered scan equals the model's ordering.
  std::vector<std::pair<std::string, uint16_t>> scanned;
  bt.ScanAll([&](const Row& k, const Rid& rid) {
    scanned.emplace_back(k[0].AsString(), rid.slot);
    return true;
  });
  std::vector<std::pair<std::string, uint16_t>> expected(model.begin(),
                                                         model.end());
  ASSERT_EQ(scanned, expected);

  // Point lookups agree on a sample of keys.
  for (int i = 0; i < 50; ++i) {
    std::string key = "k" + std::to_string(rng.NextBelow(500));
    std::set<uint16_t> got;
    bt.LookupEq(K(key), [&](const Row&, const Rid& rid) {
      got.insert(rid.slot);
      return true;
    });
    std::set<uint16_t> want;
    for (uint16_t s = 0; s < 4; ++s) {
      if (model.count({key, s}) > 0) want.insert(s);
    }
    ASSERT_EQ(got, want) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Regression: the pre-rebalance erase path left dangling leaf-chain
// pointers and unbalanced internal nodes on exactly this workload — a
// monotonic fill followed by a full drain hung indefinitely at 20k keys
// (and segfaulted a standalone probe at 4k). Each drain order stresses a
// different rebalance direction: forward drains merge rightward, reverse
// drains merge leftward, and the shuffled drain mixes borrows and merges.
TEST(BTreeTest, LargeMonotonicInsertThenDrain) {
  BTree bt;
  for (int i = 0; i < 20000; ++i) {
    bt.Insert(K(int64_t{i}), Rid{0, 0});
  }
  EXPECT_EQ(bt.size(), 20000u);
  bt.CheckInvariants();
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(bt.Erase(K(int64_t{i}), Rid{0, 0})) << i;
    if (i % 4096 == 0) bt.CheckInvariants();
  }
  EXPECT_TRUE(bt.empty());
  bt.CheckInvariants();
}

TEST(BTreeTest, LargeReverseOrderDrain) {
  BTree bt;
  for (int i = 0; i < 20000; ++i) {
    bt.Insert(K(int64_t{i}), Rid{0, 0});
  }
  bt.CheckInvariants();
  for (int i = 19999; i >= 0; --i) {
    ASSERT_TRUE(bt.Erase(K(int64_t{i}), Rid{0, 0})) << i;
    if (i % 4096 == 0) bt.CheckInvariants();
  }
  EXPECT_TRUE(bt.empty());
  bt.CheckInvariants();
}

TEST(BTreeTest, LargeRandomOrderDrain) {
  BTree bt;
  std::vector<int64_t> keys(20000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<int64_t>(i);
  for (int64_t k : keys) bt.Insert(K(k), Rid{0, 0});
  bt.CheckInvariants();
  Rng rng(7);
  rng.Shuffle(&keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(bt.Erase(K(keys[i]), Rid{0, 0})) << keys[i];
    if (i % 4096 == 0) bt.CheckInvariants();
  }
  EXPECT_TRUE(bt.empty());
  bt.CheckInvariants();
}

TEST(BTreeTest, PartialDrainKeepsRemainderScannable) {
  BTree bt;
  for (int i = 0; i < 10000; ++i) bt.Insert(K(int64_t{i}), Rid{0, 0});
  for (int i = 0; i < 10000; i += 2) {
    ASSERT_TRUE(bt.Erase(K(int64_t{i}), Rid{0, 0}));
  }
  bt.CheckInvariants();
  int64_t expect = 1;
  bt.ScanAll([&](const Row& k, const Rid&) {
    EXPECT_EQ(k[0].AsInt(), expect);
    expect += 2;
    return true;
  });
  EXPECT_EQ(expect, 10001);
}

TEST(BTreeTest, BulkLoadMatchesIncremental) {
  // Unsorted input with exact (key, rid) duplicates: bulk load must sort,
  // drop duplicates, and produce the same contents as Insert would.
  std::vector<std::pair<Row, Rid>> items;
  for (int i = 9999; i >= 0; --i) {
    items.emplace_back(K(int64_t{i}), Rid{0, static_cast<uint16_t>(i % 3)});
  }
  items.emplace_back(K(int64_t{1234}), Rid{0, 1});  // duplicate of i=1234
  BTree bt;
  bt.BulkLoad(items);
  EXPECT_EQ(bt.size(), 10000u);
  bt.CheckInvariants();
  // Packed leaves give the minimum height for the data.
  EXPECT_GT(bt.Height(), 1u);
  int64_t expect = 0;
  bt.ScanAll([&](const Row& k, const Rid& rid) {
    EXPECT_EQ(k[0].AsInt(), expect);
    EXPECT_EQ(rid.slot, static_cast<uint16_t>(expect % 3));
    ++expect;
    return true;
  });
  EXPECT_EQ(expect, 10000);
}

TEST(BTreeTest, BulkUpsertMergesIntoLiveTree) {
  // Seed a live tree, then upsert runs of every interesting size: empty,
  // small (per-key insert path), and large relative to the tree (the
  // leaf-chain merge-rebuild path). A multimap oracle checks contents.
  BTree bt;
  std::multimap<int64_t, uint16_t> oracle;
  for (int64_t i = 0; i < 3000; i += 3) {
    bt.Insert(K(i), Rid{0, 0});
    oracle.emplace(i, 0);
  }
  EXPECT_EQ(bt.BulkUpsert({}), 0u);
  bt.CheckInvariants();

  // Small run: a handful of new keys plus one exact duplicate.
  std::vector<std::pair<Row, Rid>> small;
  small.emplace_back(K(int64_t{1}), Rid{0, 0});
  small.emplace_back(K(int64_t{4}), Rid{0, 0});
  small.emplace_back(K(int64_t{0}), Rid{0, 0});  // already present
  EXPECT_EQ(bt.BulkUpsert(small), 2u);
  oracle.emplace(1, 0);
  oracle.emplace(4, 0);
  bt.CheckInvariants();

  // Large run (same order of magnitude as the tree): merge-rebuild path.
  std::vector<std::pair<Row, Rid>> large;
  for (int64_t i = 0; i < 3000; i += 3) {
    large.emplace_back(K(i + 2), Rid{0, 7});  // new keys
    large.emplace_back(K(i), Rid{0, 0});      // duplicates, all dropped
  }
  EXPECT_EQ(bt.BulkUpsert(large), 1000u);
  for (int64_t i = 0; i < 3000; i += 3) oracle.emplace(i + 2, 7);
  bt.CheckInvariants();

  EXPECT_EQ(bt.size(), oracle.size());
  auto it = oracle.begin();
  bt.ScanAll([&](const Row& k, const Rid& rid) {
    EXPECT_EQ(k[0].AsInt(), it->first);
    EXPECT_EQ(rid.slot, it->second);
    ++it;
    return true;
  });
  EXPECT_TRUE(it == oracle.end());

  // The rebuilt tree still supports ordinary mutation.
  EXPECT_TRUE(bt.Erase(K(int64_t{4}), Rid{0, 0}));
  bt.Insert(K(int64_t{4}), Rid{0, 9});
  bt.CheckInvariants();
}

TEST(BTreeTest, BulkUpsertIntoEmptyTreeMatchesBulkLoad) {
  std::vector<std::pair<Row, Rid>> items;
  for (int i = 999; i >= 0; --i) {
    items.emplace_back(K(int64_t{i}), Rid{0, 0});
  }
  BTree upserted, loaded;
  EXPECT_EQ(upserted.BulkUpsert(items), 1000u);
  loaded.BulkLoad(items);
  upserted.CheckInvariants();
  EXPECT_EQ(upserted.size(), loaded.size());
  EXPECT_EQ(upserted.Height(), loaded.Height());
}

TEST(BTreeTest, BulkLoadEmptyAndTiny) {
  BTree empty;
  empty.BulkLoad({});
  EXPECT_TRUE(empty.empty());
  empty.CheckInvariants();

  BTree tiny;
  tiny.BulkLoad({{K(int64_t{2}), Rid{0, 0}}, {K(int64_t{1}), Rid{0, 0}}});
  EXPECT_EQ(tiny.size(), 2u);
  EXPECT_EQ(tiny.Height(), 1u);
  tiny.CheckInvariants();
}

TEST(BTreeTest, BulkLoadThenMutate) {
  std::vector<std::pair<Row, Rid>> items;
  for (int i = 0; i < 5000; ++i) {
    items.emplace_back(K(int64_t{i * 2}), Rid{0, 0});  // even keys
  }
  BTree bt;
  bt.BulkLoad(std::move(items));
  bt.CheckInvariants();
  // Inserting into fully packed leaves forces splits; erasing forces
  // borrows/merges against the packed layout.
  for (int i = 0; i < 5000; ++i) bt.Insert(K(int64_t{i * 2 + 1}), Rid{0, 0});
  bt.CheckInvariants();
  EXPECT_EQ(bt.size(), 10000u);
  for (int i = 0; i < 10000; i += 3) {
    ASSERT_TRUE(bt.Erase(K(int64_t{i}), Rid{0, 0}));
  }
  bt.CheckInvariants();
}

// Satellite property test: ≥100k interleaved Insert/Erase/ScanFrom/
// LookupEq calls checked against a std::multimap oracle. The multimap
// orders duplicates by insertion, the tree by rid, so per-key slot sets
// are compared as sorted vectors.
TEST(BTreeTest, MultimapOracleHundredThousandOps) {
  Rng rng(20060612);  // fixed seed: SIGMOD 2006 paper date
  BTree bt;
  std::multimap<int64_t, uint16_t> oracle;
  constexpr int kOps = 120000;
  constexpr int64_t kKeySpace = 3000;
  constexpr uint16_t kSlots = 6;

  auto oracle_slots = [&](int64_t key) {
    std::vector<uint16_t> slots;
    auto [lo, hi] = oracle.equal_range(key);
    for (auto it = lo; it != hi; ++it) slots.push_back(it->second);
    std::sort(slots.begin(), slots.end());
    return slots;
  };

  for (int step = 0; step < kOps; ++step) {
    int64_t key = static_cast<int64_t>(rng.NextBelow(kKeySpace));
    uint16_t slot = static_cast<uint16_t>(rng.NextBelow(kSlots));
    double dice = rng.NextDouble();
    if (dice < 0.50) {
      bt.Insert(K(key), Rid{0, slot});
      std::vector<uint16_t> present = oracle_slots(key);
      if (std::find(present.begin(), present.end(), slot) == present.end()) {
        oracle.emplace(key, slot);
      }
    } else if (dice < 0.90) {
      bool erased = bt.Erase(K(key), Rid{0, slot});
      bool oracle_erased = false;
      auto [lo, hi] = oracle.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        if (it->second == slot) {
          oracle.erase(it);
          oracle_erased = true;
          break;
        }
      }
      ASSERT_EQ(erased, oracle_erased) << "step " << step << " key " << key;
    } else if (dice < 0.95) {
      std::vector<uint16_t> got;
      bt.LookupEq(K(key), [&](const Row&, const Rid& rid) {
        got.push_back(rid.slot);
        return true;
      });
      ASSERT_EQ(got, oracle_slots(key)) << "step " << step << " key " << key;
    } else {
      // Bounded ordered scan from a random lower bound.
      std::vector<std::pair<int64_t, uint16_t>> got;
      bt.ScanFrom(K(key), [&](const Row& k, const Rid& rid) {
        got.emplace_back(k[0].AsInt(), rid.slot);
        return got.size() < 64;
      });
      std::vector<std::pair<int64_t, uint16_t>> want;
      for (auto it = oracle.lower_bound(key);
           it != oracle.end() && want.size() < 64;) {
        // Consume one key's slots in rid order, as the tree emits them.
        int64_t k = it->first;
        std::vector<uint16_t> slots;
        for (; it != oracle.end() && it->first == k; ++it) {
          slots.push_back(it->second);
        }
        std::sort(slots.begin(), slots.end());
        for (uint16_t s : slots) {
          if (want.size() < 64) want.emplace_back(k, s);
        }
      }
      ASSERT_EQ(got, want) << "step " << step << " lo " << key;
    }
    if (step % 10000 == 0) {
      bt.CheckInvariants();
      ASSERT_EQ(bt.size(), oracle.size()) << "step " << step;
    }
  }
  bt.CheckInvariants();
  ASSERT_EQ(bt.size(), oracle.size());

  // Final full-scan agreement.
  std::vector<std::pair<int64_t, uint16_t>> scanned;
  bt.ScanAll([&](const Row& k, const Rid& rid) {
    scanned.emplace_back(k[0].AsInt(), rid.slot);
    return true;
  });
  std::vector<std::pair<int64_t, uint16_t>> expected;
  for (auto it = oracle.begin(); it != oracle.end();) {
    int64_t k = it->first;
    std::vector<uint16_t> slots;
    for (; it != oracle.end() && it->first == k; ++it) {
      slots.push_back(it->second);
    }
    std::sort(slots.begin(), slots.end());
    for (uint16_t s : slots) expected.emplace_back(k, s);
  }
  ASSERT_EQ(scanned, expected);
}

// ----- Cursors ---------------------------------------------------------------

TEST(BTreeCursorTest, EmptyTreeYieldsInvalidCursors) {
  BTree bt;
  EXPECT_FALSE(bt.SeekFirst().Valid());
  EXPECT_FALSE(bt.Seek(K("a")).Valid());
}

TEST(BTreeCursorTest, FullTraversalMatchesScanAll) {
  BTree bt;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    bt.Insert(K(static_cast<int64_t>(rng.NextIndex(2000))),
              Rid{0, static_cast<uint16_t>(i)});
  }
  std::vector<std::pair<int64_t, uint16_t>> scanned;
  bt.ScanAll([&](const Row& k, const Rid& rid) {
    scanned.emplace_back(k[0].AsInt(), rid.slot);
    return true;
  });
  std::vector<std::pair<int64_t, uint16_t>> walked;
  for (BTree::Cursor cur = bt.SeekFirst(); cur.Valid(); cur.Advance()) {
    walked.emplace_back(cur.key()[0].AsInt(), cur.rid().slot);
  }
  EXPECT_EQ(walked, scanned);
  EXPECT_EQ(walked.size(), bt.size());
}

TEST(BTreeCursorTest, SeekLandsOnFirstEntryAtOrAboveKey) {
  BTree bt;
  for (int64_t i = 0; i < 1000; i += 2) {  // even keys only
    bt.Insert(K(i), Rid{0, 0});
  }
  // Present key.
  BTree::Cursor cur = bt.Seek(K(int64_t{40}));
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key()[0].AsInt(), 40);
  // Absent key lands on the next larger one, possibly in a later leaf.
  cur = bt.Seek(K(int64_t{41}));
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key()[0].AsInt(), 42);
  // Past the end.
  EXPECT_FALSE(bt.Seek(K(int64_t{999})).Valid());
}

TEST(BTreeCursorTest, AdvanceCrossesLeafBoundaries) {
  BTree bt;
  const int64_t n = 3000;  // several leaves at fanout 64
  for (int64_t i = 0; i < n; ++i) bt.Insert(K(i), Rid{0, 0});
  ASSERT_GT(bt.Height(), 1u);
  int64_t expect = 0;
  for (BTree::Cursor cur = bt.SeekFirst(); cur.Valid(); cur.Advance()) {
    ASSERT_EQ(cur.key()[0].AsInt(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, n);
}


TEST(BTreeTest, SeekLastFindsMaximumEntry) {
  BTree bt;
  EXPECT_FALSE(bt.SeekLast().Valid());  // empty tree
  for (int i = 0; i < 2000; ++i) {
    bt.Insert({Datum(int64_t{i})}, {0, static_cast<uint16_t>(i % 100)});
  }
  BTree::Cursor last = bt.SeekLast();
  ASSERT_TRUE(last.Valid());
  EXPECT_EQ(last.key()[0].AsInt(), 1999);
  last.Advance();
  EXPECT_FALSE(last.Valid());  // nothing past the maximum
  // Stays correct after deletions rebalance the rightmost edge.
  for (int i = 1999; i > 1990; --i) {
    EXPECT_TRUE(bt.Erase({Datum(int64_t{i})}, {0, static_cast<uint16_t>(i % 100)}));
  }
  EXPECT_EQ(bt.SeekLast().key()[0].AsInt(), 1990);
  bt.CheckInvariants();
}

}  // namespace
}  // namespace cpdb::relstore
