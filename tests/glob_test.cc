#include "tree/glob.h"

#include <gtest/gtest.h>

namespace cpdb::tree {
namespace {

Path P(const std::string& s) { return Path::MustParse(s); }

TEST(GlobTest, LiteralMatchesExactly) {
  PathGlob g = PathGlob::MustParse("T/a/b");
  EXPECT_TRUE(g.Matches(P("T/a/b")));
  EXPECT_FALSE(g.Matches(P("T/a")));
  EXPECT_FALSE(g.Matches(P("T/a/b/c")));
  EXPECT_FALSE(g.HasWildcards());
}

TEST(GlobTest, SingleStar) {
  // The paper's example pattern: Prov(t, C, T/a/*/b, S/a/*/b).
  PathGlob g = PathGlob::MustParse("T/a/*/b");
  EXPECT_TRUE(g.Matches(P("T/a/x/b")));
  EXPECT_TRUE(g.Matches(P("T/a/y/b")));
  EXPECT_FALSE(g.Matches(P("T/a/b")));
  EXPECT_FALSE(g.Matches(P("T/a/x/y/b")));
  EXPECT_EQ(g.StarCount(), 1u);
}

TEST(GlobTest, DoubleStarMatchesAnyDepth) {
  PathGlob g = PathGlob::MustParse("T/**/b");
  EXPECT_TRUE(g.Matches(P("T/b")));
  EXPECT_TRUE(g.Matches(P("T/x/b")));
  EXPECT_TRUE(g.Matches(P("T/x/y/z/b")));
  EXPECT_FALSE(g.Matches(P("T/x/c")));
}

TEST(GlobTest, PartialSegmentWildcard) {
  PathGlob g = PathGlob::MustParse("T/prot*/name");
  EXPECT_TRUE(g.Matches(P("T/prot12/name")));
  EXPECT_FALSE(g.Matches(P("T/gene12/name")));
}

TEST(GlobTest, CaptureBindsStars) {
  PathGlob g = PathGlob::MustParse("S1/*/organelle");
  auto b = g.Capture(P("S1/o7/organelle"));
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->size(), 1u);
  EXPECT_EQ((*b)[0], "o7");
  EXPECT_FALSE(g.Capture(P("S1/o7/species")).has_value());
}

TEST(GlobTest, SubstituteRebuildsPath) {
  PathGlob src = PathGlob::MustParse("S1/*/organelle");
  PathGlob dst = PathGlob::MustParse("T/*/organelle");
  auto b = src.Capture(P("S1/o7/organelle"));
  ASSERT_TRUE(b.has_value());
  auto p = dst.Substitute(*b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "T/o7/organelle");
  EXPECT_FALSE(dst.Substitute({}).ok());            // missing binding
  EXPECT_FALSE(dst.Substitute({"a", "b"}).ok());    // extra binding
}

TEST(GlobTest, SubsumedBy) {
  EXPECT_TRUE(PathGlob::MustParse("T/a/b").SubsumedBy(
      PathGlob::MustParse("T/*/b")));
  EXPECT_TRUE(PathGlob::MustParse("T/*/b").SubsumedBy(
      PathGlob::MustParse("T/*/b")));
  EXPECT_FALSE(PathGlob::MustParse("T/*/b").SubsumedBy(
      PathGlob::MustParse("T/a/b")));
  EXPECT_FALSE(PathGlob::MustParse("T/a").SubsumedBy(
      PathGlob::MustParse("T/a/b")));
}

TEST(GlobTest, ExactFromPath) {
  PathGlob g = PathGlob::Exact(P("T/a/b"));
  EXPECT_TRUE(g.Matches(P("T/a/b")));
  EXPECT_FALSE(g.HasWildcards());
}

TEST(GlobTest, ParseRejectsEmptySegments) {
  EXPECT_FALSE(PathGlob::Parse("T//b").ok());
}

}  // namespace
}  // namespace cpdb::tree
