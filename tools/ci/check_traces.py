#!/usr/bin/env python3
"""Schema-validate a cpdb TRACES dump (obs::SpanStore::TracesJson).

    cpdb_bench_client --mode=traces > traces.json
    python3 tools/ci/check_traces.py traces.json \
        [--min-traces=1] [--require-kind=server.GETMOD] \
        [--require-child=query.execute] [--trace-id=N]

Checks, in order:

1. The document parses as JSON with the TracesJson envelope:
   {"slow_threshold_us":..., "recorded":..., "slow_recorded":...,
    "traces":[...], "slow":[...]}.
2. Every trace tree is well-formed: a nonzero trace_id, a root span
   whose span_id resolves, every child's parent present in the tree,
   spans counted correctly, and no span with a kind missing or empty.
3. Stage timings are sane: dur_us >= 0 everywhere, every child's
   start_us >= the root's start_us, and every child's dur_us <= the
   root's dur_us (children nest inside the request).
4. --require-kind: at least one recorded trace's root has that kind.
5. --require-child: every trace whose root kind matches --require-kind
   contains a child span of that kind (e.g. a traced server.GETMOD
   must show its query.execute stage).
6. --trace-id: that exact trace id is present (the handle a sampled
   client printed).
7. --min-traces: at least that many assembled traces were recorded.

Exit 0 on success; nonzero with a message on any violation. Used by the
CI socket smoke after a sampled load.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_traces: {msg}", file=sys.stderr)
    sys.exit(1)


def walk(span, out):
    out.append(span)
    for child in span.get("children", []):
        walk(child, out)
    return out


def check_tree(tree, where):
    if not isinstance(tree, dict):
        fail(f"{where}: trace entry is not an object")
    for key in ("trace_id", "spans", "root"):
        if key not in tree:
            fail(f"{where}: missing '{key}'")
    if not isinstance(tree["trace_id"], int) or tree["trace_id"] == 0:
        fail(f"{where}: bad trace_id {tree['trace_id']!r}")
    root = tree["root"]
    spans = walk(root, [])
    if tree["spans"] != len(spans):
        fail(f"{where}: 'spans' says {tree['spans']}, tree has {len(spans)}")
    ids = set()
    for s in spans:
        for key in ("span_id", "parent_span_id", "kind", "start_us", "dur_us"):
            if key not in s:
                fail(f"{where}: span missing '{key}'")
        if not s["kind"]:
            fail(f"{where}: span {s['span_id']} has an empty kind")
        if s["span_id"] in ids:
            fail(f"{where}: duplicate span_id {s['span_id']}")
        ids.add(s["span_id"])
        if s["dur_us"] < 0:
            fail(f"{where}: span {s['span_id']} has negative dur_us")
        for counter in ("rows", "round_trips"):
            if counter in s and s[counter] < 0:
                fail(f"{where}: span {s['span_id']} negative {counter}")
    for s in spans:
        if s is root:
            continue
        # Monotonic stage timings: children start at or after the root
        # and fit inside it (floating-point micros; allow 1us slack).
        if s["start_us"] + 1.0 < root["start_us"]:
            fail(f"{where}: span {s['span_id']} ({s['kind']}) starts before "
                 "the root span")
        if s["dur_us"] > root["dur_us"] + 1.0:
            fail(f"{where}: span {s['span_id']} ({s['kind']}) outlasts the "
                 "root span")
    return root, spans


def main():
    parser = argparse.ArgumentParser(
        description="Schema-validate a cpdb TRACES dump")
    parser.add_argument("path", help="traces JSON file ('-' = stdin)")
    parser.add_argument("--min-traces", type=int, default=1)
    parser.add_argument("--require-kind", action="append", default=[],
                        help="root span kind that must appear (repeatable)")
    parser.add_argument("--require-child", action="append", default=[],
                        help="child kind every matching trace must contain")
    parser.add_argument("--trace-id", type=int, default=0,
                        help="exact trace id that must be present")
    args = parser.parse_args()

    text = (sys.stdin.read() if args.path == "-"
            else open(args.path).read())
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    for key in ("slow_threshold_us", "recorded", "slow_recorded", "traces",
                "slow"):
        if key not in doc:
            fail(f"missing top-level '{key}'")
    if not isinstance(doc["traces"], list) or not isinstance(doc["slow"], list):
        fail("'traces' and 'slow' must be arrays")

    roots = []
    for i, tree in enumerate(doc["traces"]):
        root, _ = check_tree(tree, f"traces[{i}]")
        roots.append((tree, root))
    for i, tree in enumerate(doc["slow"]):
        check_tree(tree, f"slow[{i}]")

    if len(doc["traces"]) < args.min_traces:
        fail(f"only {len(doc['traces'])} trace(s) recorded, "
             f"need {args.min_traces}")
    for kind in args.require_kind:
        if not any(root["kind"] == kind for _, root in roots):
            fail(f"no trace with root kind '{kind}'")
    for child_kind in args.require_child:
        scope = [(t, r) for t, r in roots
                 if not args.require_kind or r["kind"] in args.require_kind]
        for tree, root in scope:
            kinds = {s["kind"] for s in walk(root, [])}
            if child_kind not in kinds:
                fail(f"trace {tree['trace_id']} (root {root['kind']}) has no "
                     f"'{child_kind}' child span")
    if args.trace_id and not any(t["trace_id"] == args.trace_id
                                 for t, _ in roots):
        fail(f"trace id {args.trace_id} not found")

    print(f"check_traces: OK ({len(doc['traces'])} trace(s), "
          f"{len(doc['slow'])} slow)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
