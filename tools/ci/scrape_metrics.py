#!/usr/bin/env python3
"""Scrape a cpdb /metrics endpoint and validate the exposition.

    python3 tools/ci/scrape_metrics.py http://127.0.0.1:7192/metrics \
        --out=scrape.txt [--prev=earlier.txt] [--require=cpdb_commits_total]...

Checks, in order:

1. The response parses as Prometheus text exposition format: every
   non-comment line is `name{labels} value`, every # line is a HELP or
   TYPE comment, every TYPE is counter/gauge/histogram, and every
   histogram's `le` buckets are cumulative (non-decreasing toward +Inf)
   with _count equal to the +Inf bucket.
2. Every --require'd series name is present with at least one sample.
3. With --prev, every series whose TYPE is counter (and every histogram
   _bucket/_count/_sum) must be monotonically non-decreasing versus the
   earlier scrape — a counter that moves backwards means the registry
   dropped or reset state mid-run.

Exit 0 on success; nonzero with a message on any violation. Used by the
CI socket smoke (scrape under load, scrape after, diff) and handy for
manual poking at a live server.
"""

import argparse
import re
import sys
import urllib.request

SAMPLE_RE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(-?(?:\d+(?:\.\d+)?"
    r"(?:[eE][+-]?\d+)?|Inf|NaN))$")
COMMENT_RE = re.compile(
    r"^# (HELP|TYPE) ([A-Za-z_:][A-Za-z0-9_:]*)(?: (.*))?$")
LE_RE = re.compile(r'le="([^"]*)"')


def fail(msg):
    print(f"scrape_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse(text):
    """Return (samples: {series_key: float}, types: {name: type}).

    series_key is the full `name{labels}` string so distinct label sets
    (per-verb, per-stage) are tracked independently.
    """
    samples = {}
    types = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            m = COMMENT_RE.match(line)
            if not m:
                fail(f"line {lineno}: malformed comment: {line!r}")
            if m.group(1) == "TYPE":
                if m.group(3) not in ("counter", "gauge", "histogram"):
                    fail(f"line {lineno}: unknown TYPE {m.group(3)!r}")
                types[m.group(2)] = m.group(3)
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: malformed sample: {line!r}")
        key = m.group(1) + (m.group(2) or "")
        if key in samples:
            fail(f"line {lineno}: duplicate series {key!r}")
        samples[key] = float(m.group(3).replace("Inf", "inf"))
    return samples, types


def check_histograms(samples, types):
    hist_names = [n for n, t in types.items() if t == "histogram"]
    for name in hist_names:
        # Group buckets by the label set minus `le`.
        groups = {}
        for key, value in samples.items():
            m = re.match(re.escape(name) + r"_bucket(\{[^}]*\})$", key)
            if not m:
                continue
            labels = m.group(1)
            le = LE_RE.search(labels)
            if not le:
                fail(f"{key}: histogram bucket without le label")
            rest = LE_RE.sub("", labels).replace(",,", ",")
            rest = rest.replace("{,", "{").replace(",}", "}")
            groups.setdefault(rest, []).append(
                (float(le.group(1).replace("+Inf", "inf")), value))
        for rest, buckets in groups.items():
            buckets.sort()
            values = [v for _, v in buckets]
            if values != sorted(values):
                fail(f"{name}{rest}: buckets not cumulative: {values}")
            if buckets[-1][0] != float("inf"):
                fail(f"{name}{rest}: no +Inf bucket")
            # _count must equal the +Inf bucket for the same label set.
            count_key = name + "_count" + ("" if rest == "{}" else rest)
            if count_key not in samples and rest == "{}":
                count_key = name + "_count"
            if count_key in samples and samples[count_key] != buckets[-1][1]:
                fail(f"{count_key} = {samples[count_key]} but +Inf bucket "
                     f"= {buckets[-1][1]}")


def monotonic_keys(samples, types):
    """Series keys that must never decrease between scrapes."""
    keys = set()
    for key in samples:
        name = key.split("{", 1)[0]
        if types.get(name) == "counter":
            keys.add(key)
        for base, t in types.items():
            if t == "histogram" and name in (
                    base + "_bucket", base + "_count", base + "_sum"):
                keys.add(key)
    return keys


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("url")
    ap.add_argument("--out", help="write the raw scrape here")
    ap.add_argument("--prev", help="earlier scrape to diff against")
    ap.add_argument("--require", action="append", default=[],
                    help="series name that must be present (repeatable)")
    ap.add_argument("--timeout", type=float, default=10.0)
    args = ap.parse_args()

    with urllib.request.urlopen(args.url, timeout=args.timeout) as resp:
        ctype = resp.headers.get("Content-Type", "")
        if not ctype.startswith("text/plain"):
            fail(f"unexpected Content-Type {ctype!r}")
        text = resp.read().decode("utf-8")
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)

    samples, types = parse(text)
    check_histograms(samples, types)

    for name in args.require:
        if not any(k == name or k.startswith(name + "{")
                   for k in samples):
            fail(f"required series {name!r} absent "
                 f"({len(samples)} series scraped)")

    if args.prev:
        with open(args.prev) as f:
            prev_samples, prev_types = parse(f.read())
        regressions = []
        for key in monotonic_keys(prev_samples, prev_types):
            if key in samples and samples[key] < prev_samples[key]:
                regressions.append(
                    f"{key}: {prev_samples[key]} -> {samples[key]}")
        if regressions:
            fail("counters moved backwards:\n  " + "\n  ".join(regressions))

    print(f"scrape_metrics: OK ({len(samples)} series, "
          f"{len(types)} metric names"
          + (", monotonic vs prev" if args.prev else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
