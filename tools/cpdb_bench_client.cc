// cpdb_bench_client: the operator-grade load rig for cpdb_serve.
//
// Drives the network protocol end to end — real sockets, real pipelining,
// real latency — sweeping the client-side queue depth (the PRISM batching
// knob: how many transactions one connection keeps in flight before
// draining responses). Keys are chosen per connection from a Zipfian or
// uniform distribution (src/workload/zipf.h), transactions are
// APPLY...COMMIT pipelines against the server's relational "data" table,
// and a fraction of transactions append a GetMod read so the mix touches
// the provenance query path too.
//
// Modes:
//   --mode=load    QD sweep, prints a table and writes the harness
//                  --json schema (bench "net_service"), one row per QD
//   --mode=digest  reads a deterministic digest of the server's committed
//                  state (GetMod + Get + TraceBack) to --digest=PATH; run
//                  before SIGTERM and after restart, diff for equality
//   --mode=ping    retries PING until the server answers or
//                  --timeout-sec expires (CI readiness gate)
//   --mode=stats / --mode=metrics / --mode=slowlog / --mode=traces
//                  one admin verb round-trip, body to stdout (flat JSON,
//                  Prometheus text exposition, recent slow-commit spans,
//                  assembled trace trees)
//   --mode=explain run one query with EXPLAIN (--explain=getmod|
//                  traceback|get --path=T/...) and print its span tree +
//                  cost counters as JSON
//
// Load flags: --host --port --connections --qd=1,2,4,8,16,32 --txns
// --txn-len --keys --dist=zipf|uniform --theta --rate (open-loop target
// txns/sec across all connections; 0 = closed loop) --read-frac --seed
// --json --trace-sample=N (stamp a TraceContext on every Nth traceable
// request per connection; 0 = off) --retry-max=N. Digest flags:
// --connections --keys --digest. See OPERATOR_GUIDE.md for recipes.
//
// Overload is part of the contract, not an error: shed transactions
// (typed RETRY from admission control) are counted and reported as
// `shed_txns`. The rig never retries in-line — that would corrupt the
// pipeline's response accounting — but with --retry-max=N (default 4)
// each shed transaction is retried after the measured window drains,
// with the client library's capped exponential backoff + jitter; retry
// attempts and eventual commits are reported as `retry_txns` /
// `retried_committed`. --retry-max=0 restores fail-fast.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "net/client.h"
#include "util/flags.h"
#include "workload/zipf.h"

namespace {

using namespace cpdb;
using bench::JsonReport;
using tree::Path;
using tree::Value;
using update::Update;

constexpr size_t kFields = 4;       ///< f1..f4, matches cpdb_serve's schema
constexpr size_t kChurnEvery = 32;  ///< row delete+reinsert cadence per key

std::vector<size_t> ParseSizeList(const std::string& text,
                                  std::vector<size_t> def) {
  std::vector<size_t> out;
  std::string cur;
  for (char c : text + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::stoul(cur));
      cur.clear();
    } else if (c >= '0' && c <= '9') {
      cur += c;
    }
  }
  return out.empty() ? def : out;
}

struct Options {
  std::string host = "127.0.0.1";
  int port = 7170;
  std::string mode = "load";
  size_t connections = 4;
  std::vector<size_t> qds = {1, 2, 4, 8, 16, 32};
  size_t txns = 200;
  size_t txn_len = 4;
  size_t keys = 64;
  std::string dist = "zipf";
  double theta = 0.99;
  double rate = 0;  ///< open-loop target txns/sec across all connections
  double read_frac = 0.1;
  uint64_t seed = 42;
  std::string json;
  std::string digest;
  double timeout_sec = 10;
  /// 1-in-N deterministic trace sampling per connection (0 = off).
  uint64_t trace_sample = 0;
  /// Post-drain retry attempts per shed transaction (0 = fail-fast).
  size_t retry_max = 4;
  /// --mode=explain: which verb to explain, at which path.
  std::string explain = "getmod";
  std::string path = "T";
};

std::string KeyName(size_t conn, size_t key) {
  return "c" + std::to_string(conn) + "_k" + std::to_string(key);
}

std::string FieldName(size_t f) { return "f" + std::to_string(f + 1); }

/// Client-side mirror of one key's row state. Kept optimistically in sync
/// with the server; a shed or partially rejected transaction marks the
/// key dirty, and the next transaction on it rebuilds the row from
/// scratch (delete + fresh insert) instead of guessing.
struct KeyState {
  bool created = false;
  bool occupied[kFields] = {false, false, false, false};
  size_t next_field = 0;
  size_t txn_count = 0;
  /// Keys start dirty: the server may already hold this row from an
  /// earlier sweep step or run, so the first transaction on every key is
  /// a rebuild rather than a guess.
  bool dirty = true;
};

/// One in-flight (pipelined) transaction awaiting its responses.
struct InflightTxn {
  size_t key = 0;
  size_t responses = 0;  ///< frames to Recv for this transaction
  double t0_us = 0;      ///< scheduled (open loop) or send start (closed)
  bool expect_errors = false;  ///< resync txn: rejections are planned
};

struct ConnStats {
  size_t sent = 0;
  size_t committed = 0;
  size_t shed = 0;
  size_t errored = 0;
  size_t resyncs = 0;
  size_t reads = 0;
  size_t read_errors = 0;
  size_t transport_errors = 0;
  size_t retry_txns = 0;          ///< retry attempts sent (post-drain pass)
  size_t retried_committed = 0;   ///< shed txns that committed on retry
  std::vector<double> latencies_us;  ///< committed txns only
  std::vector<size_t> shed_keys;     ///< keys of shed txns, for the retry pass
};

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Builds transaction number `txn_count` for `key` and applies the
/// expected effect to `st` optimistically (pipelined generation cannot
/// wait for the outcome; failures mark the key dirty and resync later).
std::vector<Update> MakeTxn(size_t conn, size_t key, KeyState* st,
                            size_t txn_len, size_t* op_seq,
                            bool* expect_errors) {
  Path table = Path::MustParse("T/data");
  std::string k = KeyName(conn, key);
  Path row = table.Child(k);
  std::vector<Update> ops;
  *expect_errors = false;

  bool rebuild = st->dirty || (st->created && st->txn_count > 0 &&
                               st->txn_count % kChurnEvery == 0);
  if (rebuild) {
    // Row rewrite: drop whatever the server has (the delete may be
    // rejected if the row never made it — that is fine on a resync) and
    // start the row over. Resets the field cycle.
    *expect_errors = st->dirty;
    ops.push_back(Update::Delete(table, k));
    ops.push_back(Update::Insert(table, k));
    st->created = true;
    st->dirty = false;
    for (size_t f = 0; f < kFields; ++f) st->occupied[f] = false;
    st->next_field = 0;
  } else if (!st->created) {
    ops.push_back(Update::Insert(table, k));
    st->created = true;
  }
  while (ops.size() < txn_len) {
    size_t f = st->next_field % kFields;
    if (st->occupied[f]) {
      // The relational mapping updates a field by delete + re-insert
      // (INSERT into an occupied column is a domain error by design).
      ops.push_back(Update::Delete(row, FieldName(f)));
      st->occupied[f] = false;
    } else {
      ops.push_back(Update::Insert(
          row, FieldName(f),
          Value("v" + std::to_string(conn) + "_" + std::to_string((*op_seq)++))));
      st->occupied[f] = true;
      st->next_field++;
    }
  }
  st->txn_count++;
  return ops;
}

/// Receives every response of the oldest in-flight transaction and
/// settles the books: latency on full commit, shed on RETRY, dirty-key
/// resync on unexpected rejection.
bool CompleteOldest(net::Client* client, std::deque<InflightTxn>* window,
                    std::vector<KeyState>* keys, ConnStats* stats) {
  InflightTxn txn = window->front();
  window->pop_front();
  bool any_retry = false;
  bool any_error = false;
  for (size_t i = 0; i < txn.responses; ++i) {
    auto resp = client->Recv();
    if (!resp.ok()) {
      stats->transport_errors++;
      return false;  // connection is gone; caller stops this thread
    }
    if (resp->code == net::RespCode::kRetry ||
        resp->code == net::RespCode::kDraining) {
      any_retry = true;
    } else if (resp->code == net::RespCode::kError) {
      any_error = true;
    }
  }
  if (any_retry) {
    stats->shed++;
    stats->shed_keys.push_back(txn.key);
    (*keys)[txn.key].dirty = true;
  } else if (any_error && !txn.expect_errors) {
    stats->errored++;
    (*keys)[txn.key].dirty = true;
  } else {
    stats->committed++;
    stats->latencies_us.push_back(NowMicros() - txn.t0_us);
  }
  return true;
}

/// Post-drain retry pass: each transaction shed during the measured
/// window is regenerated (the shed key is dirty, so MakeTxn rebuilds the
/// row) and re-sent synchronously, backing off with the client library's
/// capped exponential + jitter between attempts. Runs AFTER the measured
/// window so retries never skew the latency sample, and the admission
/// decision is transaction-atomic on the server, so re-sending the whole
/// APPLY...COMMIT pipeline is the correct retry unit.
void RetryShedTxns(const Options& opt, size_t conn, net::Client* client,
                   std::vector<KeyState>* keys, size_t* op_seq,
                   ConnStats* stats) {
  if (opt.retry_max == 0 || stats->shed_keys.empty()) return;
  net::RetryPolicy policy;
  policy.max_attempts = opt.retry_max;
  policy.jitter_seed = opt.seed * 0x9e3779b9u + conn;
  for (size_t key : stats->shed_keys) {
    for (size_t attempt = 1; attempt <= opt.retry_max; ++attempt) {
      bool expect_errors = false;
      std::vector<Update> ops =
          MakeTxn(conn, key, &(*keys)[key], opt.txn_len, op_seq,
                  &expect_errors);
      bool send_ok = true;
      for (const Update& u : ops) {
        if (!client->Send(net::Request::Apply(u)).ok()) send_ok = false;
      }
      if (!client->Send(net::Request::Commit()).ok()) send_ok = false;
      if (!send_ok) {
        stats->transport_errors++;
        return;
      }
      stats->retry_txns++;
      bool any_retry = false;
      bool any_error = false;
      for (size_t i = 0; i < ops.size() + 1; ++i) {
        auto resp = client->Recv();
        if (!resp.ok()) {
          stats->transport_errors++;
          return;
        }
        if (resp->code == net::RespCode::kRetry ||
            resp->code == net::RespCode::kDraining) {
          any_retry = true;
        } else if (resp->code == net::RespCode::kError) {
          any_error = true;
        }
      }
      if (!any_retry) {
        if (any_error && !expect_errors) {
          stats->errored++;
          (*keys)[key].dirty = true;
        } else {
          stats->retried_committed++;
        }
        break;
      }
      (*keys)[key].dirty = true;  // shed again; back off and go around
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<int64_t>(net::RetryBackoffMs(policy, attempt, key))));
    }
  }
}

/// One connection's closed- or open-loop run at queue depth `qd`.
ConnStats RunConnection(const Options& opt, size_t conn, size_t qd) {
  ConnStats stats;
  net::Client client;
  Status st = client.Connect(opt.host, opt.port);
  if (!st.ok()) {
    std::fprintf(stderr, "conn %zu: %s\n", conn, st.ToString().c_str());
    stats.transport_errors++;
    return stats;
  }
  if (opt.trace_sample > 0) {
    client.set_trace_sampling(opt.trace_sample,
                              opt.seed * 0x85ebca6bu + conn);
  }

  std::vector<KeyState> keys(opt.keys);
  workload::ZipfGenerator zipf(opt.keys, opt.dist == "zipf" ? opt.theta : 0.0,
                               opt.seed * 1315423911u + conn);
  Rng rng(opt.seed * 2654435761u + conn);
  std::deque<InflightTxn> window;
  size_t op_seq = 0;

  const double conn_rate =
      opt.rate > 0 ? opt.rate / static_cast<double>(opt.connections) : 0;
  const auto start = std::chrono::steady_clock::now();
  const double start_us = NowMicros();

  for (size_t i = 0; i < opt.txns; ++i) {
    while (window.size() >= qd) {
      if (!CompleteOldest(&client, &window, &keys, &stats)) return stats;
    }
    double sched_us = start_us;
    if (conn_rate > 0) {
      // Open loop: transaction i is DUE at start + i/rate, whether or not
      // the server kept up; latency is measured from the due time, so
      // server-side queueing is charged to the server (no coordinated
      // omission).
      sched_us = start_us + i * 1e6 / conn_rate;
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(static_cast<int64_t>(
                      i * 1e6 / conn_rate)));
    }

    size_t key = opt.dist == "zipf" ? zipf.NextScrambled()
                                    : rng.NextIndex(opt.keys);
    if (keys[key].dirty && keys[key].txn_count > 0) {
      stats.resyncs++;  // MakeTxn clears the flag
    }
    bool expect_errors = false;
    std::vector<Update> ops =
        MakeTxn(conn, key, &keys[key], opt.txn_len, &op_seq, &expect_errors);

    InflightTxn txn;
    txn.key = key;
    txn.expect_errors = expect_errors;
    txn.t0_us = conn_rate > 0 ? sched_us : NowMicros();
    bool send_ok = true;
    for (const Update& u : ops) {
      if (!client.Send(net::Request::Apply(u)).ok()) send_ok = false;
    }
    if (!client.Send(net::Request::Commit()).ok()) send_ok = false;
    txn.responses = ops.size() + 1;
    if (send_ok && rng.NextBool(opt.read_frac)) {
      if (client.Send(net::Request::GetMod(
                          Path::MustParse("T/data").Child(KeyName(conn, key))))
              .ok()) {
        txn.responses++;
        stats.reads++;
      }
    }
    if (!send_ok) {
      stats.transport_errors++;
      return stats;
    }
    stats.sent++;
    window.push_back(txn);
  }
  while (!window.empty()) {
    if (!CompleteOldest(&client, &window, &keys, &stats)) return stats;
  }
  RetryShedTxns(opt, conn, &client, &keys, &op_seq, &stats);
  return stats;
}

int RunLoad(const Options& opt) {
  JsonReport report("net_service");
  report.config()
      .Set("host", opt.host)
      .Set("port", opt.port)
      .Set("connections", opt.connections)
      .Set("txns_per_connection", opt.txns)
      .Set("txn_len", opt.txn_len)
      .Set("keys_per_connection", opt.keys)
      .Set("dist", opt.dist)
      .Set("theta", opt.theta)
      .Set("rate", opt.rate)
      .Set("read_frac", opt.read_frac)
      .Set("seed", static_cast<size_t>(opt.seed))
      .Set("trace_sample", static_cast<size_t>(opt.trace_sample))
      .Set("retry_max", opt.retry_max);

  bench::PrintHeader("Network service",
                     "latency under load over TCP (queue-depth sweep)");
  std::printf("server=%s:%d conns=%zu txns/conn=%zu txn-len=%zu dist=%s "
              "theta=%.2f rate=%s\n\n",
              opt.host.c_str(), opt.port, opt.connections, opt.txns,
              opt.txn_len, opt.dist.c_str(), opt.theta,
              opt.rate > 0 ? (std::to_string(opt.rate) + "/s").c_str()
                           : "closed-loop");
  std::printf("%-6s %9s %9s %7s %7s %10s %11s %11s %11s\n", "qd", "txns",
              "txn/s", "shed", "errors", "p50(us)", "p99(us)", "p999(us)",
              "reads");

  bool failed = false;
  for (size_t qd : opt.qds) {
    std::vector<ConnStats> per_conn(opt.connections);
    Stopwatch wall;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < opt.connections; ++c) {
      threads.emplace_back(
          [&, c] { per_conn[c] = RunConnection(opt, c, qd); });
    }
    for (auto& t : threads) t.join();
    double wall_ms = wall.ElapsedMillis();

    ConnStats total;
    std::vector<double> lat;
    for (const ConnStats& s : per_conn) {
      total.sent += s.sent;
      total.committed += s.committed;
      total.shed += s.shed;
      total.errored += s.errored;
      total.resyncs += s.resyncs;
      total.reads += s.reads;
      total.read_errors += s.read_errors;
      total.transport_errors += s.transport_errors;
      total.retry_txns += s.retry_txns;
      total.retried_committed += s.retried_committed;
      lat.insert(lat.end(), s.latencies_us.begin(), s.latencies_us.end());
    }
    bench::Percentiles pcts = bench::ComputePercentiles(&lat);
    double p50 = pcts.p50, p99 = pcts.p99, p999 = pcts.p999;
    double txn_per_sec =
        wall_ms <= 0 ? 0 : total.committed / (wall_ms / 1000.0);
    if (total.transport_errors > 0) failed = true;

    std::printf("%-6zu %9zu %9.0f %7zu %7zu %10.1f %11.1f %11.1f %11zu\n",
                qd, total.committed, txn_per_sec, total.shed, total.errored,
                p50, p99, p999, total.reads);
    report.AddRow()
        .Set("qd", qd)
        .Set("txns_sent", total.sent)
        .Set("txns_committed", total.committed)
        .Set("shed_txns", total.shed)
        .Set("error_txns", total.errored)
        .Set("resync_txns", total.resyncs)
        .Set("retry_txns", total.retry_txns)
        .Set("retried_committed", total.retried_committed)
        .Set("reads", total.reads)
        .Set("transport_errors", total.transport_errors)
        .Set("wall_ms", wall_ms)
        .Set("txns_per_sec", txn_per_sec)
        .Set("ops_per_sec",
             wall_ms <= 0 ? 0.0
                          : total.committed * opt.txn_len / (wall_ms / 1000.0))
        .Set("rate_target", opt.rate)
        .Set("rate_achieved",
             wall_ms <= 0 ? 0.0 : total.sent / (wall_ms / 1000.0))
        .Set("p50_txn_us", p50)
        .Set("p99_txn_us", p99)
        .Set("p999_txn_us", p999);
  }

  report.WriteTo(opt.json);
  return failed ? 1 : 0;
}

/// Deterministic rendering of the server's committed state, for
/// before/after-restart comparison. Everything here is stable across a
/// drain + reopen: GetMod tid sets are sorted, Get subtrees render from
/// ordered maps, TraceBack walks records newest-first.
int RunDigest(const Options& opt) {
  net::Client client;
  Status st = client.Connect(opt.host, opt.port);
  if (!st.ok()) {
    std::fprintf(stderr, "digest: %s\n", st.ToString().c_str());
    return 1;
  }
  std::FILE* f = std::fopen(opt.digest.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "digest: cannot write %s\n", opt.digest.c_str());
    return 1;
  }
  auto tids_line = [&](const Path& p) {
    auto tids = client.GetMod(p);
    std::string line = "getmod " + p.ToString() + ":";
    if (!tids.ok()) {
      line += " <" + tids.status().ToString() + ">";
    } else {
      for (int64_t t : *tids) line += " " + std::to_string(t);
    }
    std::fprintf(f, "%s\n", line.c_str());
  };
  tids_line(Path::MustParse("T"));
  for (size_t c = 0; c < opt.connections; ++c) {
    for (size_t k = 0; k < opt.keys; ++k) {
      Path row = Path::MustParse("T/data").Child(KeyName(c, k));
      auto got = client.Get(row);
      std::fprintf(f, "get %s: %s\n", row.ToString().c_str(),
                   got.ok() ? got->c_str()
                            : ("<" + got.status().ToString() + ">").c_str());
      tids_line(row);
      if (k < 2) {
        auto trace = client.TraceBack(row);
        std::fprintf(f, "traceback %s:\n%s\n", row.ToString().c_str(),
                     trace.ok()
                         ? trace->c_str()
                         : ("<" + trace.status().ToString() + ">").c_str());
      }
    }
  }
  std::fclose(f);
  std::printf("digest written to %s\n", opt.digest.c_str());
  return 0;
}

/// One admin verb round-trip, body printed to stdout. Covers STATS
/// (flat JSON), METRICS (Prometheus text exposition), SLOWLOG (recent
/// slow-commit spans), and TRACES (assembled trace trees) so an operator
/// with only this binary can read every telemetry surface.
int RunAdminVerb(const Options& opt) {
  net::Client client;
  Status st = client.Connect(opt.host, opt.port);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", opt.mode.c_str(), st.ToString().c_str());
    return 1;
  }
  Result<std::string> body = opt.mode == "stats"     ? client.Stats()
                             : opt.mode == "metrics" ? client.Metrics()
                             : opt.mode == "traces"  ? client.Traces()
                                                     : client.SlowLog();
  if (!body.ok()) {
    std::fprintf(stderr, "%s: %s\n", opt.mode.c_str(),
                 body.status().ToString().c_str());
    return 1;
  }
  std::fputs(body->c_str(), stdout);
  if (!body->empty() && body->back() != '\n') std::fputc('\n', stdout);
  return 0;
}

/// Runs one query server-side with EXPLAIN and prints the span tree +
/// cost counters JSON ("why is this query slow" without a sampled load).
int RunExplain(const Options& opt) {
  net::ReqType verb = opt.explain == "traceback" ? net::ReqType::kTraceBack
                      : opt.explain == "get"     ? net::ReqType::kGet
                                                 : net::ReqType::kGetMod;
  auto parsed = Path::Parse(opt.path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "explain: bad --path: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  net::Client client;
  Status st = client.Connect(opt.host, opt.port);
  if (!st.ok()) {
    std::fprintf(stderr, "explain: %s\n", st.ToString().c_str());
    return 1;
  }
  auto body = client.Explain(verb, *parsed);
  if (!body.ok()) {
    std::fprintf(stderr, "explain: %s\n", body.status().ToString().c_str());
    return 1;
  }
  std::fputs(body->c_str(), stdout);
  if (!body->empty() && body->back() != '\n') std::fputc('\n', stdout);
  return 0;
}

/// Retries PING until the server answers (CI readiness gate).
int RunPing(const Options& opt) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(opt.timeout_sec * 1000));
  for (;;) {
    net::Client client;
    if (client.Connect(opt.host, opt.port).ok() && client.Ping().ok()) {
      std::printf("pong from %s:%d\n", opt.host.c_str(), opt.port);
      return 0;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "ping: no server at %s:%d after %.1fs\n",
                   opt.host.c_str(), opt.port, opt.timeout_sec);
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Options opt;
  opt.host = flags.GetString("host", opt.host);
  opt.port = static_cast<int>(flags.GetInt("port", opt.port));
  opt.mode = flags.GetString("mode", opt.mode);
  opt.connections =
      static_cast<size_t>(flags.GetInt("connections", opt.connections));
  opt.qds = ParseSizeList(flags.GetString("qd", "1,2,4,8,16,32"), opt.qds);
  opt.txns = static_cast<size_t>(flags.GetInt("txns", opt.txns));
  opt.txn_len = static_cast<size_t>(flags.GetInt("txn-len", opt.txn_len));
  opt.keys = static_cast<size_t>(flags.GetInt("keys", opt.keys));
  opt.dist = flags.GetString("dist", opt.dist);
  opt.theta = flags.GetDouble("theta", opt.theta);
  opt.rate = flags.GetDouble("rate", opt.rate);
  opt.read_frac = flags.GetDouble("read-frac", opt.read_frac);
  opt.seed = static_cast<uint64_t>(flags.GetInt("seed", opt.seed));
  opt.json = flags.GetString("json", "");
  opt.digest = flags.GetString("digest", "digest.txt");
  opt.timeout_sec = flags.GetDouble("timeout-sec", opt.timeout_sec);
  opt.trace_sample =
      static_cast<uint64_t>(flags.GetInt("trace-sample", 0));
  opt.retry_max = static_cast<size_t>(
      flags.GetInt("retry-max", static_cast<int64_t>(opt.retry_max)));
  opt.explain = flags.GetString("explain", opt.explain);
  opt.path = flags.GetString("path", opt.path);
  if (opt.txn_len < 2) opt.txn_len = 2;  // room for a row op + a field op

  if (opt.mode == "digest") return RunDigest(opt);
  if (opt.mode == "ping") return RunPing(opt);
  if (opt.mode == "explain") return RunExplain(opt);
  if (opt.mode == "stats" || opt.mode == "metrics" || opt.mode == "slowlog" ||
      opt.mode == "traces") {
    return RunAdminVerb(opt);
  }
  return RunLoad(opt);
}
