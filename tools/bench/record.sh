#!/usr/bin/env bash
# Records the pinned network-service benchmark into BENCH_service.json
# at the repo root: N repeats of the same cpdb_serve + cpdb_bench_client
# scenario, aggregated per queue depth by MEDIAN so one noisy repeat
# cannot move the checked-in trajectory.
#
#   tools/bench/record.sh [repeats]          (default 3)
#
# Environment:
#   BUILD_DIR   where cpdb_serve/cpdb_bench_client live (default: build)
#   PORT        server port (default: 7181, off the 7170 default so a
#               stray dev server cannot be mistaken for ours)
#   OUT         output path (default: BENCH_service.json in the root)
#
# The scenario is deliberately fixed — strategy HT, durable WAL, 2
# connections, zipf(0.99) over 1000 keys, txn-len 4, QD sweep 1..32 —
# because the point of the checked-in file is comparability ACROSS PRs,
# not tunability. Change the scenario and you reset the trajectory.

set -euo pipefail

cd "$(dirname "$0")/../.."
REPEATS="${1:-3}"
BUILD_DIR="${BUILD_DIR:-build}"
PORT="${PORT:-7181}"
OUT="${OUT:-BENCH_service.json}"

SERVE="$BUILD_DIR/cpdb_serve"
CLIENT="$BUILD_DIR/cpdb_bench_client"
for bin in "$SERVE" "$CLIENT"; do
  if [ ! -x "$bin" ]; then
    echo "record.sh: $bin not built (cmake --build $BUILD_DIR -j)" >&2
    exit 2
  fi
done

# Provenance of the measurement itself: the harness stamps these three
# into every JSON report (bench/harness.h).
CPDB_GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
CPDB_RUN_ID="${CPDB_RUN_ID:-record-$(date -u +%Y%m%dT%H%M%SZ)-$$}"
export CPDB_GIT_SHA CPDB_RUN_ID

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "record.sh: $REPEATS repeat(s), sha=$CPDB_GIT_SHA run_id=$CPDB_RUN_ID"

for i in $(seq 1 "$REPEATS"); do
  DB="$WORK/db-$i"
  "$SERVE" --dir="$DB" --port="$PORT" --strategy=HT --wipe=true \
    >"$WORK/serve-$i.log" 2>&1 &
  SERVER_PID=$!
  "$CLIENT" --port="$PORT" --mode=ping --timeout-sec=10 >/dev/null

  "$CLIENT" --port="$PORT" --mode=load \
    --connections=2 --qd=1,2,4,8,16,32 --txns=300 --txn-len=4 \
    --dist=zipf --theta=0.99 --keys=1000 --seed=42 \
    --json="$WORK/repeat-$i.json" >"$WORK/load-$i.log"

  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || {
    echo "record.sh: server exited non-zero on repeat $i" >&2
    tail -5 "$WORK/serve-$i.log" >&2
    exit 2
  }
  SERVER_PID=""
  echo "record.sh: repeat $i/$REPEATS done"
done

python3 - "$OUT" "$WORK"/repeat-*.json <<'EOF'
import json
import statistics
import sys

out_path, *paths = sys.argv[1:]
docs = [json.load(open(p)) for p in paths]

# Per-QD median across repeats for every numeric row field; count
# fields (txns_sent etc.) are identical across repeats by construction,
# so the median is exact, not a compromise.
by_qd = {}
for doc in docs:
    for row in doc["rows"]:
        by_qd.setdefault(row["qd"], []).append(row)

rows = []
for qd in sorted(by_qd):
    group = by_qd[qd]
    merged = {}
    for key in group[0]:
        vals = [r[key] for r in group]
        if all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in vals):
            med = statistics.median(vals)
            merged[key] = int(med) if all(
                isinstance(v, int) for v in vals) else med
        else:
            merged[key] = vals[0]
    rows.append(merged)

first = docs[0]
result = {
    "bench": first["bench"],
    "git_sha": first.get("git_sha", "unknown"),
    "utc_timestamp": first.get("utc_timestamp", ""),
    "run_id": first.get("run_id", "local"),
    "config": dict(first["config"], repeats=len(docs)),
    "rows": rows,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=1)
    f.write("\n")
print(f"record.sh: wrote {out_path} "
      f"({len(rows)} rows, median of {len(docs)} repeats)")
EOF
