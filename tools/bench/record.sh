#!/usr/bin/env bash
# Records the pinned service benchmarks at the repo root: N repeats of
# each fixed scenario, aggregated by MEDIAN so one noisy repeat cannot
# move the checked-in trajectory.
#
#   * BENCH_service.json    — cpdb_serve + cpdb_bench_client QD sweep
#                             (network path, per queue depth)
#   * BENCH_concurrent.json — bench_concurrent thread sweep 1..16
#                             (in-process closed loop, per thread count;
#                             the scaling claim for the MVCC snapshot +
#                             parallel-apply service layer lives here)
#
#   tools/bench/record.sh [repeats]          (default 3)
#
# Environment:
#   BUILD_DIR   where the bench binaries live (default: build)
#   PORT        server port (default: 7181, off the 7170 default so a
#               stray dev server cannot be mistaken for ours)
#   OUT         QD-sweep output (default: BENCH_service.json)
#   CONC_OUT    thread-sweep output (default: BENCH_concurrent.json)
#
# The scenarios are deliberately fixed — QD sweep: strategy HT, durable
# WAL, 2 connections, zipf(0.99) over 1000 keys, txn-len 4, QD 1..32;
# thread sweep: strategy HT, durable WAL, threads 1,2,4,8,16, txn-len 8,
# 100 txns/thread, default apply workers — because the point of the
# checked-in files is comparability ACROSS PRs, not tunability. Change a
# scenario and you reset its trajectory.

set -euo pipefail

cd "$(dirname "$0")/../.."
REPEATS="${1:-3}"
BUILD_DIR="${BUILD_DIR:-build}"
PORT="${PORT:-7181}"
OUT="${OUT:-BENCH_service.json}"
CONC_OUT="${CONC_OUT:-BENCH_concurrent.json}"

SERVE="$BUILD_DIR/cpdb_serve"
CLIENT="$BUILD_DIR/cpdb_bench_client"
CONC="$BUILD_DIR/bench_concurrent"
for bin in "$SERVE" "$CLIENT" "$CONC"; do
  if [ ! -x "$bin" ]; then
    echo "record.sh: $bin not built (cmake --build $BUILD_DIR -j)" >&2
    exit 2
  fi
done

# Provenance of the measurement itself: the harness stamps these three
# into every JSON report (bench/harness.h).
CPDB_GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
CPDB_RUN_ID="${CPDB_RUN_ID:-record-$(date -u +%Y%m%dT%H%M%SZ)-$$}"
export CPDB_GIT_SHA CPDB_RUN_ID

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "record.sh: $REPEATS repeat(s), sha=$CPDB_GIT_SHA run_id=$CPDB_RUN_ID"

for i in $(seq 1 "$REPEATS"); do
  DB="$WORK/db-$i"
  "$SERVE" --dir="$DB" --port="$PORT" --strategy=HT --wipe=true \
    >"$WORK/serve-$i.log" 2>&1 &
  SERVER_PID=$!
  "$CLIENT" --port="$PORT" --mode=ping --timeout-sec=10 >/dev/null

  "$CLIENT" --port="$PORT" --mode=load \
    --connections=2 --qd=1,2,4,8,16,32 --txns=300 --txn-len=4 \
    --dist=zipf --theta=0.99 --keys=1000 --seed=42 \
    --json="$WORK/repeat-$i.json" >"$WORK/load-$i.log"

  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || {
    echo "record.sh: server exited non-zero on repeat $i" >&2
    tail -5 "$WORK/serve-$i.log" >&2
    exit 2
  }
  SERVER_PID=""
  echo "record.sh: QD-sweep repeat $i/$REPEATS done"
done

# Thread sweep: in-process closed loop, one WAL dir per repeat so every
# repeat recovers from a cold store. txn-len 8 is the contended shape
# (8 staged ops per commit); bench_concurrent's apply-workers default
# (the shipped service configuration) applies.
for i in $(seq 1 "$REPEATS"); do
  "$CONC" --threads=1,2,4,8,16 --txn-lens=8 --txns=100 \
    --durable="$WORK/conc-wal-$i" \
    --json="$WORK/conc-$i.json" >"$WORK/conc-$i.log"
  echo "record.sh: thread-sweep repeat $i/$REPEATS done"
done

# Median-merge across repeats, keyed by the sweep variable(s): every
# numeric row field takes the per-key median; count fields (txns_sent
# etc.) are identical across repeats by construction, so the median is
# exact, not a compromise.
cat >"$WORK/merge.py" <<'EOF'
import json
import statistics
import sys

out_path, key_spec, *paths = sys.argv[1:]
key_fields = key_spec.split(",")
docs = [json.load(open(p)) for p in paths]

by_key = {}
for doc in docs:
    for row in doc["rows"]:
        by_key.setdefault(tuple(row[k] for k in key_fields), []).append(row)

rows = []
for key in sorted(by_key):
    group = by_key[key]
    merged = {}
    for field in group[0]:
        vals = [r[field] for r in group]
        if all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in vals):
            med = statistics.median(vals)
            merged[field] = int(med) if all(
                isinstance(v, int) for v in vals) else med
        else:
            merged[field] = vals[0]
    rows.append(merged)

first = docs[0]
result = {
    "bench": first["bench"],
    "git_sha": first.get("git_sha", "unknown"),
    "utc_timestamp": first.get("utc_timestamp", ""),
    "run_id": first.get("run_id", "local"),
    "config": dict(first["config"], repeats=len(docs)),
    "rows": rows,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=1)
    f.write("\n")
print(f"record.sh: wrote {out_path} "
      f"({len(rows)} rows, median of {len(docs)} repeats)")
EOF

python3 "$WORK/merge.py" "$OUT" qd "$WORK"/repeat-*.json
python3 "$WORK/merge.py" "$CONC_OUT" threads,txn_len "$WORK"/conc-*.json
