#!/usr/bin/env bash
# Changed-files-only clang-format check (CI `analyze` job; fine locally).
#
#   tools/lint/check_format.sh [base-ref]
#
# Diffs HEAD against the merge base with base-ref (default origin/main),
# and runs `clang-format --dry-run --Werror` on the changed .cc/.h files
# only — the whole tree is NOT required to be formatted, so the check
# never punishes a PR for code it didn't touch. Exits 0 when nothing
# relevant changed or when clang-format is not installed (prints a
# notice; CI always installs it).
set -euo pipefail

base_ref="${1:-origin/main}"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping" >&2
  exit 0
fi

if ! base="$(git merge-base "$base_ref" HEAD 2>/dev/null)"; then
  echo "check_format: cannot resolve merge base with $base_ref; skipping" >&2
  exit 0
fi

mapfile -t changed < <(git diff --name-only --diff-filter=ACMR "$base" HEAD \
  -- '*.cc' '*.h' | grep -E '^(src|tests|bench|examples|tools)/' || true)

if [ "${#changed[@]}" -eq 0 ]; then
  echo "check_format: no changed C++ files vs $base_ref"
  exit 0
fi

echo "check_format: checking ${#changed[@]} changed file(s) vs $base_ref"
clang-format --dry-run --Werror "${changed[@]}"
echo "check_format: OK"
