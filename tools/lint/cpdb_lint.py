#!/usr/bin/env python3
"""cpdb_lint: repo-specific invariants that neither the compiler nor
clang-tidy can express. Runs in CI (the `analyze` job) and locally:

    python3 tools/lint/cpdb_lint.py [--root .]

Exit status 0 means every rule holds; 1 means findings were printed,
one per line, as `RULE path:line: message`.

Rules
-----
DURABILITY-FSYNC
    fsync/fdatasync may appear only under src/storage/. The durability
    story (one group-commit fsync per cohort, counted in
    DurabilityStats and charged on the CostModel) depends on every
    barrier going through Wal::Sync; a stray fsync elsewhere silently
    breaks both the perf model and the crash-consistency argument.

ANNOTATED-MUTEX
    src/service/ and src/storage/ must use the annotated primitives
    from util/mutex.h (cpdb::Mutex, cpdb::MutexLock, cpdb::CondVar),
    never raw std::mutex & friends: Clang's thread-safety analysis
    cannot see through libstdc++'s unannotated types, so a raw mutex
    in those layers is an unchecked lock. The escape hatch
    CPDB_NO_THREAD_SAFETY_ANALYSIS is likewise banned there — the
    concurrency core must stay fully analyzed (zero suppressions).
    util/mutex.h itself is the one sanctioned wrapper site.

PROV-TABLE-WRITES
    The Prov/TxnMeta tables may be touched by name only inside
    provenance/backend.cc: all writes funnel through
    ProvBackend::WriteRecords / WriteTxnMeta (that is what makes the
    round-trip accounting and the service layer's shared-table
    contract enforceable). Production code and benches must go through
    the backend; tests/ may read the tables to assert on them.

BENCH-JSON
    Every figure bench in bench/*.cc must emit the harness JSON schema
    ({"bench":..., "config":..., "rows":[...]}) behind a --json flag,
    via bench::JsonReport, so BENCH_*.json perf-trajectory tracking
    can diff any bench across PRs. bench_micro.cc is exempt: it is a
    google-benchmark binary with that framework's own JSON reporter.

NET-FRAMING
    Raw socket byte movement (send/recv/sendto/recvfrom/sendmsg/
    recvmsg) may appear only in src/net/frame.cc: every wire byte in
    src/net/ and tools/ travels as a `varint(len)|crc32|payload` frame
    through the helpers there, so no unframed payload can ever reach
    the wire and the robustness guarantees (torn/oversized/bit-flipped
    input -> typed error + close, never a crash or partial apply) hold
    at a single choke point. Even the tests' deliberate violations go
    through frame.cc's WriteRaw. Pipe/file read(2)/write(2) are fine —
    the rule names only the socket verbs. (src/net/metrics_http.cc's
    plain-HTTP GET /metrics endpoint speaks read(2)/write(2) by design:
    standard Prometheus scrapers do not speak the cpdb frame protocol,
    and keeping it off the framed path is exactly what this rule wants.)

OBS-METRICS
    src/service/ and src/net/ must export operational counters through
    the obs::Registry (src/obs/metrics.h), not ad-hoc std::atomic
    members: the registry is the single typed surface behind STATS,
    METRICS, /metrics, and the bench JSON, and a counter living outside
    it is invisible to all four. The allowlist names the std::atomic
    members that are NOT metrics — engine tid allocation and seal
    probes, the latch's epoch, the snapshot chain's watermark, and the
    server's lifecycle flags — each of which is load-bearing
    synchronization state with its own reader, not telemetry.

OBS-TRACE
    Every protocol verb the server executes must pass through the ONE
    tracing choke point, Server::ExecuteTraced (src/net/server.cc):
    that is where the sampled/EXPLAIN/slow-query decision is made, the
    root span ("server.<VERB>") is opened, and the assembled tree is
    recorded into the engine's SpanStore. Concretely: WorkerLoop must
    dispatch via ExecuteTraced (never Execute directly), Execute may be
    called only from ExecuteTraced (plus its own definition), and
    ExecuteTraced must open the "server."-prefixed root span. A verb
    handler that bypasses the choke point is invisible to TRACES,
    EXPLAIN, and the slow-query log all at once.
"""

import argparse
import pathlib
import re
import sys

FINDINGS = []


def finding(rule, path, lineno, msg):
    FINDINGS.append(f"{rule} {path}:{lineno}: {msg}")


def strip_comments(line):
    """Drop // comments; enough for these rules (no /* */ spans in rules'
    target patterns that matter, and string literals never contain them)."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def iter_source(root, subdir, suffixes=(".cc", ".h")):
    base = root / subdir
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix in suffixes and path.is_file():
            yield path


FSYNC_RE = re.compile(r"\b(?:::)?f(?:data)?sync\s*\(")
# ChargeFsync()/Fsyncs() are cost-model accounting, not barriers.
FSYNC_OK_RE = re.compile(r"(?:ChargeFsync|Fsyncs)\s*\(")


def check_fsync(root):
    for path in iter_source(root, "src"):
        rel = path.relative_to(root)
        if rel.parts[:2] == ("src", "storage"):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = strip_comments(line)
            if FSYNC_OK_RE.search(code):
                code = FSYNC_OK_RE.sub("", code)
            if FSYNC_RE.search(code):
                finding("DURABILITY-FSYNC", rel, lineno,
                        "fsync/fdatasync outside src/storage/ "
                        "(barriers must go through Wal::Sync)")


RAW_SYNC_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")


def check_annotated_mutex(root):
    for subdir in ("src/service", "src/storage"):
        for path in iter_source(root, subdir):
            rel = path.relative_to(root)
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                code = strip_comments(line)
                m = RAW_SYNC_RE.search(code)
                if m:
                    finding("ANNOTATED-MUTEX", rel, lineno,
                            f"raw {m.group(0)} in a concurrency layer; "
                            "use cpdb::Mutex/MutexLock/CondVar "
                            "(util/mutex.h) so -Wthread-safety sees it")
                if "CPDB_NO_THREAD_SAFETY_ANALYSIS" in code:
                    finding("ANNOTATED-MUTEX", rel, lineno,
                            "thread-safety suppression in a concurrency "
                            "layer; src/service and src/storage must stay "
                            "fully analyzed")


PROV_TABLE_RE = re.compile(
    r"kProvTable|kMetaTable|"
    r"(?:GetTable|CreateTable|DropTable)\s*\(\s*\"(?:Prov|TxnMeta)\"")
PROV_ALLOWED = {
    pathlib.PurePath("src/provenance/backend.cc"),
    pathlib.PurePath("src/provenance/backend.h"),
}


def check_prov_table_writes(root):
    dirs = ["src", "bench", "examples"]
    for subdir in dirs:
        for path in iter_source(root, subdir):
            rel = path.relative_to(root)
            if pathlib.PurePath(rel) in PROV_ALLOWED:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if PROV_TABLE_RE.search(strip_comments(line)):
                    finding("PROV-TABLE-WRITES", rel, lineno,
                            "direct Prov/TxnMeta table access outside "
                            "ProvBackend; writes must funnel through "
                            "WriteRecords/WriteTxnMeta")


BENCH_EXEMPT = {"bench_micro.cc"}  # google-benchmark's own reporter


def check_bench_json(root):
    bench = root / "bench"
    if not bench.is_dir():
        return
    for path in sorted(bench.glob("*.cc")):
        if path.name in BENCH_EXEMPT:
            continue
        rel = path.relative_to(root)
        text = path.read_text()
        missing = []
        if not re.search(r'#include\s+"harness\.h"', text):
            missing.append('#include "harness.h"')
        if "JsonReport" not in text:
            missing.append("a bench::JsonReport")
        if not re.search(r'GetString\s*\(\s*"json"', text):
            missing.append('the --json flag (GetString("json", ...))')
        if missing:
            finding("BENCH-JSON", rel, 1,
                    "bench does not emit the harness JSON schema; "
                    "missing " + ", ".join(missing))


SOCKET_VERB_RE = re.compile(
    r"\b(?:::)?(?:send|recv|sendto|recvfrom|sendmsg|recvmsg)\s*\(")
NET_FRAMING_ALLOWED = {pathlib.PurePath("src/net/frame.cc")}


def check_net_framing(root):
    for subdir in ("src/net", "tools"):
        for path in iter_source(root, subdir, suffixes=(".cc", ".h")):
            rel = path.relative_to(root)
            if pathlib.PurePath(rel) in NET_FRAMING_ALLOWED:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if SOCKET_VERB_RE.search(strip_comments(line)):
                    finding("NET-FRAMING", rel, lineno,
                            "raw socket send/recv outside src/net/frame.cc; "
                            "wire bytes must travel as frames through "
                            "WriteFrame/ReadFrame (net/frame.h)")


ATOMIC_DECL_RE = re.compile(r"std::atomic(?:<|_)")
# Synchronization state, not telemetry: each entry is (file, member) for a
# std::atomic whose readers are correctness logic rather than a scrape.
OBS_METRICS_ALLOWED = {
    ("src/service/engine.h", "next_tid_"),       # tid allocator
    ("src/service/engine.h", "trace_id_seq_"),   # trace-id allocator
    ("src/service/engine.h", "committed_tid_"),  # MVCC watermark
    ("src/service/engine.h", "sync_calls_"),     # ONE-seal probe
    ("src/service/latch.h", "epoch_"),           # exclusive-section count
    ("src/service/snapshots.h", "latest_tid_"),  # version-chain watermark
    ("src/net/server.h", "draining_"),           # lifecycle flag
    ("src/net/server.h", "started_"),            # lifecycle flag
    ("src/net/metrics_http.h", "stopping_"),     # lifecycle flag
}


def check_obs_metrics(root):
    member_re = re.compile(r"std::atomic<[^>]*>\s+(\w+)")
    for subdir in ("src/service", "src/net"):
        for path in iter_source(root, subdir):
            rel = path.relative_to(root)
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                code = strip_comments(line)
                if not ATOMIC_DECL_RE.search(code):
                    continue
                m = member_re.search(code)
                member = m.group(1) if m else "<expression>"
                if (str(rel), member) in OBS_METRICS_ALLOWED:
                    continue
                finding("OBS-METRICS", rel, lineno,
                        f"ad-hoc std::atomic '{member}' in an instrumented "
                        "layer; operational counters must register in the "
                        "obs::Registry (src/obs/metrics.h) so STATS/METRICS/"
                        "/metrics/bench JSON all see them (extend the "
                        "allowlist only for synchronization state)")


def check_obs_trace(root):
    """Pins the server's verb dispatch to the tracing choke point.

    Line-oriented, like the other rules: finds the function each line
    belongs to by tracking `Server::<name>(` definition headers, then
    enforces (a) WorkerLoop dispatches via ExecuteTraced, (b) Execute is
    invoked only from ExecuteTraced, (c) ExecuteTraced opens the
    "server." root span and records into the span store.
    """
    path = root / "src" / "net" / "server.cc"
    if not path.is_file():
        return
    rel = path.relative_to(root)
    defn_re = re.compile(r"\bServer::(\w+)\s*\(")
    execute_call_re = re.compile(r"(?<![\w:])Execute\s*\(")
    current_fn = None
    workerloop_dispatches = False
    execute_calls = []  # (lineno, enclosing function)
    traced_opens_root = False
    traced_records = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        code = strip_comments(line)
        m = defn_re.search(code)
        if m:
            current_fn = m.group(1)
            continue  # the definition header itself is not a call
        if current_fn == "WorkerLoop" and "ExecuteTraced(" in code:
            workerloop_dispatches = True
        if execute_call_re.search(code) and "ExecuteTraced" not in code:
            execute_calls.append((lineno, current_fn))
        if current_fn == "ExecuteTraced":
            if '"server."' in code:
                traced_opens_root = True
            if "spans().Record(" in code:
                traced_records = True
    if not workerloop_dispatches:
        finding("OBS-TRACE", rel, 1,
                "WorkerLoop does not dispatch through ExecuteTraced; "
                "every verb must pass the tracing choke point")
    for lineno, fn in execute_calls:
        if fn != "ExecuteTraced":
            finding("OBS-TRACE", rel, lineno,
                    f"direct Execute() call in {fn or '<toplevel>'}; only "
                    "ExecuteTraced may invoke Execute (the tracing choke "
                    "point decides collection for every verb)")
    if not traced_opens_root:
        finding("OBS-TRACE", rel, 1,
                'ExecuteTraced does not open the "server." root span')
    if not traced_records:
        finding("OBS-TRACE", rel, 1,
                "ExecuteTraced does not record into the engine SpanStore "
                "(spans().Record)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"cpdb_lint: no src/ under {root}", file=sys.stderr)
        return 2

    check_fsync(root)
    check_annotated_mutex(root)
    check_prov_table_writes(root)
    check_bench_json(root)
    check_net_framing(root)
    check_obs_metrics(root)
    check_obs_trace(root)

    for f in FINDINGS:
        print(f)
    if FINDINGS:
        print(f"cpdb_lint: {len(FINDINGS)} finding(s)", file=sys.stderr)
        return 1
    print("cpdb_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
