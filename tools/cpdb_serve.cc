// cpdb_serve: the standalone network front end for a curated database.
//
// Opens (or creates) a durable store, mounts the relational curated
// target and the provenance backend over the SAME Database (so data and
// provenance recover together), attaches the multi-session engine, and
// serves the length-prefixed binary protocol of src/net/ on a TCP port.
//
//   cpdb_serve --dir=serve-db --port=7170 --strategy=HT --workers=4
//
// Flags:
//   --dir=DIR              durable store directory ("" = in-memory, for
//                          smoke tests; nothing survives a restart)
//   --host=ADDR            bind address            (default 127.0.0.1)
//   --port=N               TCP port; 0 = ephemeral (default 7170)
//   --strategy=N|H|T|HT    provenance strategy     (default HT)
//   --workers=N            request worker threads  (default 4)
//   --max-queue-depth=N    admission bound: RETRY writes while more than
//                          N committers wait in the commit queue
//   --max-inflight-mb=N    global parsed-request byte budget before the
//                          event loop stops reading (TCP backpressure)
//   --wipe                 remove --dir before opening (fresh start)
//
// Observability flags (README "Observability", OPERATOR_GUIDE.md):
//   --metrics-port=N       serve Prometheus text exposition as plain HTTP
//                          GET /metrics on this port (0 = ephemeral;
//                          default -1 = off). The METRICS wire verb
//                          returns the same render without this flag.
//   --slow-commit-ms=X     commits slower than X ms are captured in the
//                          slow-commit ring (SLOWLOG verb) and logged to
//                          stderr (default 0 = off)
//   --slow-query-ms=X      read requests slower than X ms have their span
//                          tree captured in the trace store's slow ring
//                          (TRACES verb) and logged to stderr as one JSON
//                          line (default 0 = off)
//   --metrics-json=PATH    sample the registry every --metrics-interval-ms
//                          (default 1000) and, at drain, write the window
//                          deltas to PATH in the bench harness --json
//                          schema (bench "serve_report")
//
// Shutdown: SIGTERM or SIGINT triggers the graceful drain — stop
// accepting, finish and flush every parsed request, checkpoint the store
// under the exclusive latch, close the Database (releasing its flock) —
// and the process exits 0. A restart then recovers bit-identical state,
// which the CI socket smoke test checks through the wire (GetMod/Get
// digests before SIGTERM == after restart). See OPERATOR_GUIDE.md.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "cpdb/cpdb.h"
#include "harness.h"
#include "net/metrics_http.h"
#include "net/server.h"
#include "obs/report.h"
#include "util/flags.h"

using namespace cpdb;

namespace {

provenance::Strategy ParseStrategy(const std::string& s) {
  if (s == "N") return provenance::Strategy::kNaive;
  if (s == "H") return provenance::Strategy::kHierarchical;
  if (s == "T") return provenance::Strategy::kTransactional;
  return provenance::Strategy::kHierarchicalTransactional;
}

/// The curated table every cpdb_serve instance fronts: one string key
/// plus four nullable string fields, so clients can exercise tuple
/// insert/update/delete through tree-shaped updates (ins {k:{}} into
/// T/data; ins {f1:v} into T/data/k; del ...). Must match what
/// cpdb_bench_client generates.
relstore::Schema DataSchema() {
  return relstore::Schema({{"id", relstore::ColumnType::kString, false},
                           {"f1", relstore::ColumnType::kString, true},
                           {"f2", relstore::ColumnType::kString, true},
                           {"f3", relstore::ColumnType::kString, true},
                           {"f4", relstore::ColumnType::kString, true}});
}

net::Server* g_server = nullptr;  ///< for the signal handler only

extern "C" void HandleSignal(int) {
  // BeginDrain is async-signal-safe: one atomic store + one pipe write.
  if (g_server != nullptr) g_server->BeginDrain();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string dir = flags.GetString("dir", "serve-db");
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = static_cast<int>(flags.GetInt("port", 7170));

  if (flags.GetBool("wipe", false) && !dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  std::unique_ptr<relstore::Database> db;
  if (dir.empty()) {
    db = std::make_unique<relstore::Database>("curated");
  } else {
    auto opened = relstore::Database::Open("curated", dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "cpdb_serve: open %s: %s\n", dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(opened).value();
  }
  if (!db->GetTable("data").ok()) {
    auto created = db->CreateTable("data", DataSchema());
    if (!created.ok()) {
      std::fprintf(stderr, "cpdb_serve: create table: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    // Persist the DDL now: a server killed before its first commit must
    // still reopen with the schema on disk.
    if (db->durable()) (void)db->Sync();
  }

  provenance::ProvBackend backend(db.get());
  wrap::RelationalTargetDb target("T", db.get(),
                                  std::vector<std::string>{"data"});
  service::Engine engine(&backend, &target);
  const double slow_ms = flags.GetDouble("slow-commit-ms", 0);
  if (slow_ms > 0) engine.SetSlowCommitThresholdUs(slow_ms * 1000.0);
  const double slow_query_ms = flags.GetDouble("slow-query-ms", 0);
  if (slow_query_ms > 0) {
    engine.SetSlowQueryThresholdUs(slow_query_ms * 1000.0);
  }
  service::SessionOptions sopts;
  sopts.strategy = ParseStrategy(flags.GetString("strategy", "HT"));
  service::SessionPool pool(&engine, sopts);

  net::ServerOptions nopts;
  nopts.host = host;
  nopts.port = port;
  nopts.workers = static_cast<size_t>(flags.GetInt("workers", 4));
  nopts.max_queue_depth =
      static_cast<size_t>(flags.GetInt("max-queue-depth", 64));
  nopts.max_inflight_bytes =
      static_cast<size_t>(flags.GetInt("max-inflight-mb", 8)) << 20;
  net::Server server(&engine, &pool, nopts);

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // peer resets surface as send() errors

  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "cpdb_serve: start: %s\n", st.ToString().c_str());
    return 1;
  }

  // Observability sidecars: the HTTP scrape endpoint and the periodic
  // JSON reporter both read the engine's registry — the same objects the
  // STATS and METRICS verbs render.
  const int metrics_port = static_cast<int>(flags.GetInt("metrics-port", -1));
  std::unique_ptr<net::MetricsHttpServer> metrics_http;
  if (metrics_port >= 0) {
    metrics_http = std::make_unique<net::MetricsHttpServer>(&engine.metrics(),
                                                            host, metrics_port);
    Status ms = metrics_http->Start();
    if (!ms.ok()) {
      std::fprintf(stderr, "cpdb_serve: metrics: %s\n", ms.ToString().c_str());
      return 1;
    }
  }
  const std::string metrics_json = flags.GetString("metrics-json", "");
  std::unique_ptr<obs::Reporter> reporter;
  if (!metrics_json.empty()) {
    reporter = std::make_unique<obs::Reporter>(
        &engine.metrics(), flags.GetInt("metrics-interval-ms", 1000));
    reporter->Start();
  }

  std::printf("cpdb_serve: listening on %s:%d (dir=%s strategy=%s "
              "workers=%zu max-queue-depth=%zu)\n",
              host.c_str(), server.port(),
              dir.empty() ? "<in-memory>" : dir.c_str(),
              provenance::StrategyShortName(sopts.strategy), nopts.workers,
              nopts.max_queue_depth);
  if (metrics_http != nullptr) {
    std::printf("cpdb_serve: metrics on http://%s:%d/metrics\n", host.c_str(),
                metrics_http->port());
  }
  std::fflush(stdout);

  server.Wait();  // until a drain completes (SIGTERM/SIGINT or DRAIN verb)
  g_server = nullptr;
  if (metrics_http != nullptr) metrics_http->Stop();
  if (reporter != nullptr) {
    reporter->Stop();  // folds the final partial window
    std::string doc = "{\"bench\":\"serve_report\"";
    doc += "," + bench::JsonReport::MetaFragment();
    bench::JsonDict cfg;
    cfg.Set("host", host)
        .Set("port", server.port())
        .Set("workers", nopts.workers)
        .Set("interval_ms",
             static_cast<int64_t>(flags.GetInt("metrics-interval-ms", 1000)));
    doc += ",\"config\":" + cfg.ToString() + ",\"rows\":[";
    const std::vector<std::string> rows = reporter->Rows();
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) doc += ",";
      doc += rows[i];
    }
    doc += "]}\n";
    std::FILE* f = std::fopen(metrics_json.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::printf("cpdb_serve: metrics report written to %s\n",
                  metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cpdb_serve: cannot write %s\n",
                   metrics_json.c_str());
    }
  }

  net::Server::Stats s = server.stats();
  std::printf("cpdb_serve: drained (conns=%llu requests=%llu retries=%llu "
              "bad_frames=%llu last_tid=%lld)\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.bad_frames),
              static_cast<long long>(engine.LastAllocatedTid()));

  // The drain already checkpointed; Close releases the flock so a
  // restarted server can take ownership immediately.
  Status closed = db->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "cpdb_serve: close: %s\n", closed.ToString().c_str());
    return 1;
  }
  return 0;
}
