// The paper's Figure 1 walkthrough: a molecular biologist curates her
// protein database MyDB by copying from SwissProt, OMIM, and NCBI, then
// fixing a PubMed id — and one year later uses provenance to resolve a
// discrepancy she could not otherwise trace.
//
//   $ ./examples/example_curation_session

#include <cstdio>

#include "cpdb/cpdb.h"

using namespace cpdb;

namespace {

tree::Tree T(const char* literal) {
  auto r = tree::ParseTree(literal);
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

tree::Path P(const char* s) { return tree::Path::MustParse(s); }

#define CHECK_OK(expr)                                      \
  do {                                                      \
    ::cpdb::Status _st = (expr);                            \
    if (!_st.ok()) {                                        \
      std::fprintf(stderr, "FAILED: %s\n  at %s\n",         \
                   _st.ToString().c_str(), #expr);          \
      return 1;                                             \
    }                                                       \
  } while (0)

}  // namespace

int main() {
  // ----- The databases involved (Figure 1) -------------------------------
  wrap::TreeSourceDb swissprot("SwissProt", T(R"({
    O95477: {name: ABC1, organism: "H.sapiens",
             PTM: {kind: phospho, site: 24}},
    P02741: {name: CRP, organism: "H.sapiens",
             PTM: {kind: glyco, site: 7}}})"));
  wrap::TreeSourceDb omim("OMIM", T(R"({
    600046: {title: "ABC1 cholesterol efflux",
             publication: {pmid: 1236512, year: 1999}}})"));
  wrap::TreeSourceDb ncbi("NCBI", T(R"({
    NP_005493: {gi: 4557321, len: 2261}})"));

  wrap::TreeTargetDb mydb("MyDB", T("{}"));
  relstore::Database prov_db("provdb");
  provenance::ProvBackend backend(&prov_db);

  EditorOptions opts;
  opts.strategy = provenance::Strategy::kHierarchicalTransactional;
  opts.enable_archive = true;  // she also archives her versions
  opts.user = "biologist";
  auto editor = Editor::Create(&mydb, &backend, opts);
  if (!editor.ok()) return 1;
  Editor& ed = **editor;
  CHECK_OK(ed.MountSource(&swissprot));
  CHECK_OK(ed.MountSource(&omim));
  CHECK_OK(ed.MountSource(&ncbi));

  std::printf("== (a) copy interesting proteins from SwissProt ==\n");
  CHECK_OK(ed.CopyPaste(P("SwissProt/O95477"), P("MyDB/ABC1")));
  CHECK_OK(ed.CopyPaste(P("SwissProt/P02741"), P("MyDB/CRP")));
  CHECK_OK(ed.Commit());

  std::printf("== (b) rename the PTM so it isn't confused with PTMs "
              "from other sites ==\n");
  // "fixes the new entries so that the PTM found in SwissProt is not
  // confused with PTMs in her database found from other sites": move the
  // subtree to a new edge (copy within T + delete the old edge).
  CHECK_OK(ed.CopyPaste(P("MyDB/ABC1/PTM"), P("MyDB/ABC1/SwissProt-PTM")));
  CHECK_OK(ed.Delete(P("MyDB/ABC1"), "PTM"));
  CHECK_OK(ed.Commit());

  std::printf("== (c) copy publication details from OMIM and related "
              "data from NCBI ==\n");
  CHECK_OK(ed.Insert(P("MyDB/ABC1"), "Publications"));
  CHECK_OK(ed.CopyPaste(P("OMIM/600046/publication"),
                        P("MyDB/ABC1/Publications/p1")));
  CHECK_OK(ed.CopyPaste(P("NCBI/NP_005493"), P("MyDB/ABC1/NP_005493")));
  CHECK_OK(ed.Commit());

  std::printf("== (d) fix a mistaken PubMed publication number ==\n");
  CHECK_OK(ed.Delete(P("MyDB/ABC1/Publications/p1"), "pmid"));
  CHECK_OK(ed.Insert(P("MyDB/ABC1/Publications/p1"), "pmid",
                     tree::Value(int64_t{12504680})));
  CHECK_OK(ed.Commit());

  std::printf("\nMyDB after the curation session:\n%s\n",
              tree::ToPretty(*ed.TargetView()).c_str());

  // ----- One year later ----------------------------------------------------
  std::printf("== one year later: where did this PTM come from? ==\n");
  auto trace = ed.query()->TraceBack(P("MyDB/ABC1/SwissProt-PTM/kind"));
  if (!trace.ok()) return 1;
  for (const auto& step : trace->steps) {
    std::printf("  txn %lld: %c  %s  <-  %s\n",
                static_cast<long long>(step.tid),
                provenance::ProvOpChar(step.op),
                step.loc.ToString().c_str(), step.src.ToString().c_str());
  }
  if (trace->external_src.has_value()) {
    std::printf("  => originally copied from %s (transaction %lld)\n",
                trace->external_src->ToString().c_str(),
                static_cast<long long>(trace->external_tid));
  }

  std::printf("\n== which transactions touched the ABC1 entry? ==\n");
  auto versions = ed.archive()->MakeVersionFn();
  auto mod = ed.query()->GetMod(P("MyDB/ABC1"), versions);
  if (mod.ok()) {
    std::printf("  Mod(MyDB/ABC1) = {");
    for (size_t i = 0; i < mod->size(); ++i) {
      std::printf("%s%lld", i ? ", " : "",
                  static_cast<long long>((*mod)[i]));
    }
    std::printf("}\n");
  }

  std::printf("\n== and the corrected pmid? ==\n");
  auto src = ed.query()->GetSrc(P("MyDB/ABC1/Publications/p1/pmid"));
  if (src.ok() && src->has_value()) {
    std::printf("  entered locally in transaction %lld (the fix), not "
                "copied from OMIM\n",
                static_cast<long long>(**src));
  }
  return 0;
}
