// Quickstart: build a tiny curated database, copy data into it from a
// source, and ask where the data came from.
//
//   $ ./examples/example_quickstart

#include <cstdio>

#include "cpdb/cpdb.h"

using namespace cpdb;

int main() {
  // 1. A provenance store (the stand-in for the MySQL database P of the
  //    paper's Figure 2).
  relstore::Database prov_db("provdb");
  provenance::ProvBackend backend(&prov_db);

  // 2. The curated target database T: starts with one record.
  auto initial = tree::ParseTree("{ABC1: {accession: O95477}}");
  wrap::TreeTargetDb target("T", std::move(initial).value());

  // 3. A source database S1 (a wrapped web page / flat file).
  auto swissprot = tree::ParseTree(
      "{O95477: {name: ABC1, organism: \"H.sapiens\","
      " PTM: {kind: phospho, site: 24}}}");
  wrap::TreeSourceDb s1("SwissProt", std::move(swissprot).value());

  // 4. The provenance-aware editor — the only write path to T.
  EditorOptions opts;
  opts.strategy = provenance::Strategy::kHierarchicalTransactional;
  auto editor = Editor::Create(&target, &backend, opts);
  if (!editor.ok()) return 1;
  Editor& ed = **editor;
  if (!ed.MountSource(&s1).ok()) return 1;

  // 5. Curate: copy the PTM record from SwissProt into our entry,
  //    then annotate it, and commit the transaction.
  auto ptm_src = tree::Path::MustParse("SwissProt/O95477/PTM");
  auto ptm_dst = tree::Path::MustParse("T/ABC1/PTM");
  if (!ed.CopyPaste(ptm_src, ptm_dst).ok()) return 1;
  if (!ed.Insert(ptm_dst, "note", tree::Value("verified 2006-03")).ok()) {
    return 1;
  }
  if (!ed.Commit().ok()) return 1;

  std::printf("Curated database T:\n%s\n",
              tree::ToPretty(*ed.TargetView()).c_str());

  // 6. Ask provenance questions.
  auto trace = ed.query()->TraceBack(ptm_dst.Child("kind"));
  if (trace.ok() && trace->external_src.has_value()) {
    std::printf("T/ABC1/PTM/kind was copied from %s in transaction %lld\n",
                trace->external_src->ToString().c_str(),
                static_cast<long long>(trace->external_tid));
  }
  auto src = ed.query()->GetSrc(tree::Path::MustParse("T/ABC1/PTM/note"));
  if (src.ok() && src->has_value()) {
    std::printf("T/ABC1/PTM/note was created locally in transaction %lld\n",
                static_cast<long long>(**src));
  }

  std::printf("\nProvenance store (%zu records):\n",
              ed.store()->RecordCount());
  auto records = ed.store()->backend()->GetAll();
  if (records.ok()) {
    std::printf("%s", provenance::RecordsToTable(records.value()).c_str());
  }
  return 0;
}
