// The Own query (paper Section 2.2): "What is the history of 'ownership'
// of a piece of data? That is, what sequence of databases contained the
// previous copies of a node?" — answerable when several databases each
// track provenance. Here a reference database M curates from a raw
// source S; a personal database T curates from M; the ownership chain of
// a T node spans both provenance stores.
//
//   $ ./examples/example_ownership_chain

#include <cstdio>

#include "cpdb/cpdb.h"

using namespace cpdb;

namespace {
tree::Path P(const char* s) { return tree::Path::MustParse(s); }
}  // namespace

int main() {
  // ----- Database M: a community reference db curated from source S ------
  auto s_content = tree::ParseTree(
      "{prot1: {name: ABC1, loc: membrane},"
      " prot2: {name: CRP, loc: plasma}}");
  wrap::TreeSourceDb s("S", std::move(s_content).value());

  relstore::Database m_prov("m_prov");
  provenance::ProvBackend m_backend(&m_prov);
  auto m_initial = tree::ParseTree("{}");
  wrap::TreeTargetDb m_db("M", std::move(m_initial).value());
  EditorOptions m_opts;
  m_opts.strategy = provenance::Strategy::kNaive;
  auto m_editor = Editor::Create(&m_db, &m_backend, m_opts);
  if (!m_editor.ok()) return 1;
  Editor& m = **m_editor;
  if (!m.MountSource(&s).ok()) return 1;
  if (!m.CopyPaste(P("S/prot1"), P("M/entry1")).ok()) return 1;
  if (!m.Insert(P("M/entry1"), "curator_note",
                tree::Value("checked against literature"))
           .ok()) {
    return 1;
  }

  // ----- Database T: a personal db curated from M -------------------------
  // T's editor mounts a snapshot of M's current content as a source.
  wrap::TreeSourceDb m_as_source("M", m.TargetView()->Clone());
  relstore::Database t_prov("t_prov");
  provenance::ProvBackend t_backend(&t_prov);
  auto t_initial = tree::ParseTree("{}");
  wrap::TreeTargetDb t_db("T", std::move(t_initial).value());
  EditorOptions t_opts;
  t_opts.strategy = provenance::Strategy::kNaive;
  auto t_editor = Editor::Create(&t_db, &t_backend, t_opts);
  if (!t_editor.ok()) return 1;
  Editor& t = **t_editor;
  if (!t.MountSource(&m_as_source).ok()) return 1;
  if (!t.CopyPaste(P("M/entry1"), P("T/myprot")).ok()) return 1;

  std::printf("T after curation:\n%s\n",
              tree::ToPretty(*t.TargetView()).c_str());

  // ----- Ownership chain across both provenance stores --------------------
  query::OwnRegistry registry;
  registry.Register("T", t.query());
  registry.Register("M", m.query());
  // "S" is not registered: it does not track provenance.

  for (const char* probe : {"T/myprot/name", "T/myprot/curator_note"}) {
    auto chain = registry.OwnChain(P(probe));
    if (!chain.ok()) return 1;
    std::printf("Own(%s):\n", probe);
    for (const auto& link : chain.value()) {
      std::printf("  in %-3s at %-24s", link.database.c_str(),
                  link.path.ToString().c_str());
      if (link.origin_tid.has_value()) {
        std::printf("  [entered here, txn %lld]",
                    static_cast<long long>(*link.origin_tid));
      }
      if (!link.copy_tids.empty()) {
        std::printf("  copies:");
        for (int64_t tid : link.copy_tids) {
          std::printf(" %lld", static_cast<long long>(tid));
        }
      }
      if (link.round_trips > 0) {
        std::printf("  (%zu round trip%s)", link.round_trips,
                    link.round_trips == 1 ? "" : "s");
      }
      std::printf("\n");
    }
    if (registry.last_chain_truncated()) {
      std::printf("  (chain leaves the provenance-tracking world here — "
                  "\"many queries only have incomplete answers\")\n");
    }
    std::printf("\n");
  }
  return 0;
}
