// Provenance audit over a simulated six months of curation: runs a
// realistic random workload (the paper estimates 14,000 steps ~ six
// months of work by four curators), then audits the database: storage
// per strategy, modification history, and trace validation against the
// version archive.
//
//   $ ./examples/example_provenance_audit [--steps N]

#include <cstdio>

#include "cpdb/cpdb.h"
#include "util/flags.h"

using namespace cpdb;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  size_t steps = static_cast<size_t>(flags.GetInt("steps", 2000));

  std::printf("Simulating %zu curation steps (mix workload, commit every "
              "5 ops) under all four strategies...\n\n",
              steps);

  std::printf("%-28s %10s %12s\n", "strategy", "records", "physical KB");
  for (auto strat :
       {provenance::Strategy::kNaive, provenance::Strategy::kTransactional,
        provenance::Strategy::kHierarchical,
        provenance::Strategy::kHierarchicalTransactional}) {
    relstore::Database prov_db("provdb");
    provenance::ProvBackend backend(&prov_db);
    wrap::TreeTargetDb target("T", workload::GenMimiLike(400, 11));
    wrap::TreeSourceDb source("S1", workload::GenOrganelleLike(800, 12));

    EditorOptions opts;
    opts.strategy = strat;
    opts.enable_archive = (strat == provenance::Strategy::kNaive);
    auto editor = Editor::Create(&target, &backend, opts);
    if (!editor.ok()) return 1;
    Editor& ed = **editor;
    if (!ed.MountSource(&source).ok()) return 1;

    workload::GenOptions gen_opts;
    gen_opts.pattern = workload::Pattern::kMix;
    gen_opts.seed = 77;
    workload::UpdateGenerator gen(&ed.universe(), gen_opts);
    size_t applied = 0;
    for (size_t i = 0; i < steps; ++i) {
      auto u = gen.Next();
      if (!u.has_value()) break;
      if (!ed.ApplyUpdate(*u).ok()) continue;
      update::ApplyEffect effect;
      if (u->kind == update::OpKind::kInsert) {
        effect.inserted.push_back(u->AffectedPath());
      } else if (u->kind == update::OpKind::kCopy) {
        const tree::Tree* pasted = ed.universe().Find(u->target);
        if (pasted != nullptr) {
          pasted->Visit([&](const tree::Path& rel, const tree::Tree&) {
            effect.copied.emplace_back(u->target.Concat(rel),
                                       u->source.Concat(rel));
          });
        }
      }
      gen.OnApplied(*u, effect);
      if (++applied % 5 == 0) (void)ed.Commit();
    }
    (void)ed.Commit();

    std::printf("%-28s %10zu %12.1f\n", provenance::StrategyName(strat),
                ed.store()->RecordCount(),
                ed.store()->PhysicalBytes() / 1024.0);

    if (strat != provenance::Strategy::kNaive) continue;

    // ----- Deep audit on the naive run (full information retained) -----
    std::printf("\n-- audit of the naive run --\n");
    std::printf("curation performed: %zu adds, %zu deletes, %zu copies\n",
                gen.adds(), gen.deletes(), gen.copies());

    // Stream the whole table through a cursor in fixed-size batches —
    // the audit never holds more than one batch in memory, however large
    // six months of provenance grows.
    {
      size_t ins = 0, del = 0, cpy = 0;
      provenance::ProvCursor scan = backend.ScanAll();
      std::vector<provenance::ProvRecord> chunk;
      while (scan.Next(&chunk, 512) > 0) {
        for (const auto& r : chunk) {
          switch (r.op) {
            case provenance::ProvOp::kInsert: ++ins; break;
            case provenance::ProvOp::kDelete: ++del; break;
            case provenance::ProvOp::kCopy: ++cpy; break;
          }
        }
      }
      std::printf("streamed audit of %zu records (%zu round trips): "
                  "%zu I / %zu D / %zu C\n",
                  ins + del + cpy, scan.RoundTrips(), ins, del, cpy);
    }

    // How many surviving nodes are copies of external data?
    const tree::Tree* t = ed.TargetView();
    size_t external = 0, local = 0, original = 0, checked = 0;
    std::vector<tree::Path> probe;
    t->Visit([&](const tree::Path& rel, const tree::Tree&) {
      if (!rel.IsRoot() && probe.size() < 300) {
        probe.push_back(tree::Path({std::string("T")}).Concat(rel));
      }
    });
    for (const auto& p : probe) {
      auto trace = ed.query()->TraceBack(p);
      if (!trace.ok()) continue;
      ++checked;
      if (trace->external_src.has_value()) {
        ++external;
      } else if (trace->origin_tid.has_value()) {
        ++local;
      } else {
        ++original;  // untouched since the initial version
      }
    }
    std::printf("of %zu sampled nodes: %zu copied from sources, %zu "
                "entered locally, %zu from the initial import\n",
                checked, external, local, original);

    // Cross-check one trace against the archive: the value at the traced
    // location in version t must equal the value at its source in t-1.
    auto* arch = ed.archive();
    size_t validated = 0, attempted = 0;
    for (const auto& p : probe) {
      if (attempted >= 25) break;
      auto trace = ed.query()->TraceBack(p);
      if (!trace.ok() || trace->steps.empty()) continue;
      const auto& hop = trace->steps.front();
      if (hop.op != provenance::ProvOp::kCopy) continue;
      ++attempted;
      auto post = arch->GetVersion(hop.tid);
      auto pre = arch->GetVersion(hop.tid - 1);
      if (!post.ok() || !pre.ok()) continue;
      const tree::Tree* dst = post->Find(hop.loc);
      const tree::Tree* src = pre->Find(hop.src);
      if (dst != nullptr && src != nullptr && dst->Equals(*src)) {
        ++validated;
      }
    }
    std::printf("validated %zu/%zu copy hops against archived versions\n\n",
                validated, attempted);
  }
  return 0;
}
