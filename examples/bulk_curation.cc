// Bulk updates and approximate provenance (the paper's Section 6
// extension): copy a whole column of a wrapped *relational* source into
// the curated database with one glob statement, and contrast full
// provenance storage with a single approximate glob record.
//
//   $ ./examples/example_bulk_curation

#include <cstdio>

#include "cpdb/cpdb.h"

using namespace cpdb;

int main() {
  // A relational source (OrganelleDB-on-MySQL stand-in): organelle(id,
  // protein, organelle, species), exposed through the keyed tree view
  // S1/organelle/<id>/<field> — the DB/R/tid/F addressing of Section 2.
  relstore::Database source_db("organelledb");
  auto table = workload::FillOrganelleRelational(&source_db, 500, 5);
  if (!table.ok()) return 1;
  wrap::RelationalSourceDb source("S1", &source_db, {table.value()});

  wrap::TreeTargetDb target("T", workload::GenMimiLike(0, 1));
  relstore::Database prov_db("provdb");
  provenance::ProvBackend backend(&prov_db);

  EditorOptions opts;
  opts.strategy = provenance::Strategy::kTransactional;
  opts.enable_approx = true;
  auto editor = Editor::Create(&target, &backend, opts);
  if (!editor.ok()) return 1;
  Editor& ed = **editor;
  if (!ed.MountSource(&source).ok()) return 1;

  // First import every entry wholesale with one bulk statement.
  update::BulkCopySpec import;
  import.src = tree::PathGlob::MustParse("S1/organelle/*");
  import.dst = tree::PathGlob::MustParse("T/*");
  auto n = ed.BulkCopy(import);
  if (!n.ok()) {
    std::fprintf(stderr, "bulk copy failed: %s\n",
                 n.status().ToString().c_str());
    return 1;
  }
  if (!ed.Commit().ok()) return 1;
  std::printf("bulk import: %zu atomic copies from the relational "
              "source\n", n.value());

  // Later, refresh just the organelle column (a restructuring recipe).
  update::BulkCopySpec refresh;
  refresh.src = tree::PathGlob::MustParse("S1/organelle/*/organelle");
  refresh.dst = tree::PathGlob::MustParse("T/*/organelle");
  auto m = ed.BulkCopy(refresh);
  if (!m.ok()) return 1;
  if (!ed.Commit().ok()) return 1;
  std::printf("bulk refresh: %zu atomic copies\n\n", m.value());

  // Storage comparison: full provenance vs the approximate glob records.
  std::printf("full provenance:        %6zu records, %8zu bytes "
              "(physical)\n",
              ed.store()->RecordCount(), ed.store()->PhysicalBytes());
  std::printf("approximate provenance: %6zu records, %8zu bytes\n\n",
              ed.approx()->RecordCount(), ed.approx()->ApproxBytes());

  // Approximate answers are three-valued: a matching wildcard record can
  // only say "maybe".
  auto loc = tree::Path::MustParse("T/o7/organelle");
  auto src_exact = tree::Path::MustParse("S1/organelle/o7/organelle");
  auto wrong_src = tree::Path::MustParse("S1/organelle/o9/organelle");
  std::printf("may T/o7/organelle come from S1/organelle/o7/organelle? "
              "%s\n",
              query::MayAnswerName(ed.approx()->MayComeFrom(
                  ed.store()->LastCommittedTid(), loc, src_exact)));
  std::printf("may T/o7/organelle come from S1/organelle/o9/organelle? "
              "%s\n",
              query::MayAnswerName(ed.approx()->MayComeFrom(
                  ed.store()->LastCommittedTid(), loc, wrong_src)));

  // The full store still answers exactly.
  auto trace = ed.query()->TraceBack(loc);
  if (trace.ok() && trace->external_src.has_value()) {
    std::printf("exact answer: copied from %s in txn %lld\n",
                trace->external_src->ToString().c_str(),
                static_cast<long long>(trace->external_tid));
  }
  return 0;
}
