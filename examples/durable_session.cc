// Durable curation session: edit a curated database, crash, reopen, and
// show that both the data and its provenance survive the restart.
//
// The curated target (a relational "prot" table) and the provenance store
// share ONE durable relstore::Database, so every committed transaction's
// data rows and provenance records ride the same write-ahead-log record
// and recover together — never one without the other.
//
// Usage:
//   durable_session [--dir=DIR]                  # populate, crash, verify
//   durable_session --dir=DIR --phase=populate   # populate then HARD-EXIT
//   durable_session --dir=DIR --phase=verify     # reopen and verify
//
// The split phases let CI kill the process for real between populate and
// verify (populate ends in _Exit: no destructors, no Close — the honest
// crash). Exit code 0 = verified.

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "cpdb/cpdb.h"
#include "util/flags.h"

using namespace cpdb;
using tree::Path;

namespace {

constexpr const char* kScript =
    "(1) insert {p1 : {}} into T/prot;\n"
    "(2) insert {name : ABC1} into T/prot/p1;\n"
    "(3) insert {p2 : {}} into T/prot;\n"
    "(4) insert {loc : nucleus} into T/prot/p2;\n";

struct Session {
  std::unique_ptr<relstore::Database> db;
  std::unique_ptr<provenance::ProvBackend> backend;
  std::unique_ptr<wrap::RelationalTargetDb> target;
  std::unique_ptr<Editor> editor;
};

bool OpenSession(const std::string& dir, Session* s) {
  auto db = relstore::Database::Open("curated", dir);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return false;
  }
  s->db = std::move(db).value();
  if (!s->db->GetTable("prot").ok()) {
    relstore::Schema schema(
        {{"id", relstore::ColumnType::kString, false},
         {"name", relstore::ColumnType::kString, true},
         {"loc", relstore::ColumnType::kString, true}});
    if (!s->db->CreateTable("prot", schema).ok()) return false;
  }
  s->backend = std::make_unique<provenance::ProvBackend>(s->db.get());
  s->target = std::make_unique<wrap::RelationalTargetDb>(
      "T", s->db.get(), std::vector<std::string>{"prot"});
  EditorOptions opts;
  opts.strategy = provenance::Strategy::kHierarchicalTransactional;
  // Transaction numbering continues where the recovered store left off.
  opts.first_tid = s->backend->MaxTid() + 1;
  auto editor = Editor::Create(s->target.get(), s->backend.get(), opts);
  if (!editor.ok()) {
    std::fprintf(stderr, "editor: %s\n",
                 editor.status().ToString().c_str());
    return false;
  }
  s->editor = std::move(editor).value();
  return true;
}

int Populate(const std::string& dir, bool hard_exit) {
  std::filesystem::remove_all(dir);
  Session s;
  if (!OpenSession(dir, &s)) return 1;
  if (!s.editor->ApplyScriptText(kScript).ok()) return 1;
  if (!s.editor->Commit().ok()) return 1;  // txn 1: fsynced here
  // A second transaction, so recovery has more than one commit to replay.
  if (!s.editor->Insert(Path::MustParse("T/prot/p1"), "loc",
                        tree::Value("membrane"))
           .ok()) {
    return 1;
  }
  if (!s.editor->Commit().ok()) return 1;  // txn 2
  const auto& stats = s.db->durability()->stats();
  std::printf("populated: %zu provenance rows, %zu commits, %zu fsyncs, "
              "%zu log bytes\n",
              s.backend->RowCount(), stats.commits, stats.fsyncs,
              stats.log_bytes);
  if (hard_exit) {
    std::printf("crashing now (hard exit, no Close)\n");
    std::fflush(stdout);
    std::_Exit(0);  // the crash: no destructors, no final sync
  }
  // In-process variant: drop everything without Close(), same crash
  // window — only fsynced state may survive into the verify step.
  return 0;
}

int Verify(const std::string& dir) {
  Session s;
  if (!OpenSession(dir, &s)) return 1;
  const auto& stats = s.db->durability()->stats();
  std::printf("recovered: %zu commit records replayed, last seq %llu\n",
              stats.replayed_commits,
              static_cast<unsigned long long>(stats.last_seq));

  auto all = s.backend->GetAll();
  if (!all.ok()) return 1;
  std::printf("\nProvenance table after restart:\n%s\n",
              provenance::RecordsToTable(*all).c_str());

  // The data came back...
  const tree::Tree* name =
      s.editor->universe().Find(Path::MustParse("T/prot/p1/name"));
  if (name == nullptr || !name->HasValue() ||
      name->value().AsString() != "ABC1") {
    std::fprintf(stderr, "FAIL: T/prot/p1/name did not survive\n");
    return 1;
  }
  // ...and so did its provenance: the insert of p1/name is queryable.
  auto src = s.editor->query()->GetSrc(Path::MustParse("T/prot/p1/name"));
  if (!src.ok() || !src->has_value()) {
    std::fprintf(stderr, "FAIL: GetSrc lost after recovery\n");
    return 1;
  }
  std::printf("GetSrc(T/prot/p1/name) = txn %lld\n",
              static_cast<long long>(**src));
  auto mod = s.editor->query()->GetMod(Path::MustParse("T/prot"));
  if (!mod.ok() || mod->empty()) {
    std::fprintf(stderr, "FAIL: GetMod lost after recovery\n");
    return 1;
  }
  std::printf("GetMod(T/prot) spans %zu transactions\n", mod->size());
  if (s.backend->RowCount() == 0 || stats.replayed_commits == 0) {
    std::fprintf(stderr, "FAIL: nothing was recovered\n");
    return 1;
  }
  std::printf("\nOK: data and provenance recovered to the same "
              "committed transaction.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string dir = flags.GetString("dir", "durable-session-db");
  const std::string phase = flags.GetString("phase", "");
  if (phase == "populate") return Populate(dir, /*hard_exit=*/true);
  if (phase == "verify") return Verify(dir);
  int rc = Populate(dir, /*hard_exit=*/false);
  if (rc != 0) return rc;
  std::printf("\n-- simulated crash; reopening --\n\n");
  return Verify(dir);
}
